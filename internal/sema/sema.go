// Package sema performs semantic analysis: it binds names, applies
// Fortran's implicit typing rule, evaluates parameter constants, checks
// types, validates the paper's directives (§3), enforces the compile-time
// reshape restrictions of §6 (no equivalence with reshaped arrays,
// redistribute only on regular distributions), and lowers the AST to
// internal/ir.
//
// The pre-linker re-invokes sema when cloning a subroutine for a particular
// combination of incoming reshaped distributions (§5); the bindings arrive
// through Options.ParamDists.
package sema

import (
	"fmt"
	"sort"
	"strings"

	"dsmdist/internal/dist"
	"dsmdist/internal/fortran"
	"dsmdist/internal/ir"
)

// Error is one semantic diagnostic.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// ErrorList collects diagnostics.
type ErrorList []*Error

func (l ErrorList) Error() string {
	parts := make([]string, len(l))
	for i, e := range l {
		parts[i] = e.Error()
	}
	return strings.Join(parts, "\n")
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Options adjusts analysis of one unit.
type Options struct {
	// ParamDists maps formal-parameter names to reshaped distributions
	// propagated down the call chain by the pre-linker (§5).
	ParamDists map[string]dist.Spec
}

// AnalyzeFile analyzes every unit of a parsed file.
func AnalyzeFile(f *fortran.File) ([]*ir.Unit, error) {
	var units []*ir.Unit
	var errs ErrorList
	for _, u := range f.Units {
		iu, es := AnalyzeUnit(f.Name, u, Options{})
		errs = append(errs, es...)
		if iu != nil {
			units = append(units, iu)
		}
	}
	return units, errs.Err()
}

// AnalyzeUnit analyzes one unit.
func AnalyzeUnit(file string, u *fortran.Unit, opts Options) (*ir.Unit, ErrorList) {
	a := &analyzer{
		file: file,
		unit: &ir.Unit{
			Name:       u.Name,
			IsProgram:  u.Kind == fortran.ProgramUnit,
			SourceFile: file,
			Line:       u.Line,
		},
		syms:   map[string]*ir.Sym{},
		consts: map[string]constVal{},
		opts:   opts,
	}
	a.run(u)
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	return a.unit, nil
}

type constVal struct {
	isInt bool
	i     int64
	f     float64
}

type analyzer struct {
	file   string
	unit   *ir.Unit
	syms   map[string]*ir.Sym
	consts map[string]constVal
	opts   Options
	errs   ErrorList

	// parallel-region context
	parDepth  int
	parLocals map[*ir.Sym]bool
	loopVars  []*ir.Sym
}

func (a *analyzer) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

// implicitType applies the Fortran default: names starting i..n are
// integer, everything else real*8.
func implicitType(name string) ir.Type {
	if name != "" && name[0] >= 'i' && name[0] <= 'n' {
		return ir.Int
	}
	return ir.Real
}

func (a *analyzer) run(u *fortran.Unit) {
	// Pass 1: create symbols for declared names and record parameter
	// constants; declaration order matters only for parameter values.
	declared := map[string]*fortran.Declarator{}
	declaredType := map[string]fortran.BaseType{}
	for _, d := range u.Decls {
		td, ok := d.(*fortran.TypeDecl)
		if !ok {
			continue
		}
		for i := range td.Items {
			it := &td.Items[i]
			if _, dup := declared[it.Name]; dup {
				a.errorf(it.Line, "%s declared twice", it.Name)
				continue
			}
			declared[it.Name] = it
			declaredType[it.Name] = td.Type
		}
	}

	// Pass 2: parameter constants, evaluated in order.
	for _, d := range u.Decls {
		pd, ok := d.(*fortran.ParamDecl)
		if !ok {
			continue
		}
		for i, name := range pd.Names {
			cv, ok := a.evalConst(pd.Values[i])
			if !ok {
				a.errorf(pd.Line, "parameter %s is not a constant expression", name)
				continue
			}
			// A declared type overrides the implicit rule.
			if bt, has := declaredType[name]; has {
				if bt == fortran.TInteger && !cv.isInt {
					cv = constVal{isInt: true, i: int64(cv.f)}
				} else if bt == fortran.TReal8 && cv.isInt {
					cv = constVal{isInt: false, f: float64(cv.i)}
				}
				delete(declared, name) // not a variable
			} else if implicitType(name) == ir.Int && !cv.isInt {
				cv = constVal{isInt: true, i: int64(cv.f)}
			}
			a.consts[name] = cv
		}
	}

	// Pass 3: materialize variable symbols (parameters excluded).
	names := make([]string, 0, len(declared))
	for n := range declared {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		it := declared[n]
		ty := ir.Real
		if declaredType[n] == fortran.TInteger {
			ty = ir.Int
		}
		s := &ir.Sym{Name: n, Type: ty, Kind: ir.Scalar, Line: it.Line}
		if it.Dims != nil {
			s.Kind = ir.Array
		}
		a.syms[n] = s
		a.unit.AddSym(s)
	}

	// Bind formal parameters.
	for i, pname := range u.Params {
		s, ok := a.syms[pname]
		if !ok {
			s = &ir.Sym{Name: pname, Type: implicitType(pname), Kind: ir.Scalar, Line: u.Line}
			a.syms[pname] = s
			a.unit.AddSym(s)
		}
		s.IsParam = true
		s.ParamIndex = i
		a.unit.Params = append(a.unit.Params, s)
	}

	// Pass 4: resolve array extents.
	for _, n := range names {
		it := declared[n]
		s := a.syms[n]
		if s.Kind != ir.Array {
			continue
		}
		for di, de := range it.Dims {
			if de == nil {
				if di != len(it.Dims)-1 {
					a.errorf(it.Line, "%s: '*' extent only allowed in the last dimension", n)
				}
				if !s.IsParam {
					a.errorf(it.Line, "%s: assumed-size arrays must be dummy arguments", n)
				}
				s.Dims = append(s.Dims, nil)
				continue
			}
			e := a.lowerExpr(de)
			if e == nil {
				s.Dims = append(s.Dims, ir.CI(1))
				continue
			}
			if e.Type() != ir.Int {
				a.errorf(it.Line, "%s: array extent must be integer", n)
				e = ir.CI(1)
			}
			s.Dims = append(s.Dims, e)
		}
	}

	// Pass 5: common blocks.
	for _, d := range u.Decls {
		cd, ok := d.(*fortran.CommonDecl)
		if !ok {
			continue
		}
		blk := &ir.CommonBlock{Name: cd.Block}
		for i, n := range cd.Names {
			s := a.lookupOrImplicit(n, cd.Line)
			if s.IsParam {
				a.errorf(cd.Line, "dummy argument %s cannot be in a common block", n)
				continue
			}
			if s.Common != "" {
				a.errorf(cd.Line, "%s already in common /%s/", n, s.Common)
				continue
			}
			s.Common = cd.Block
			s.CommonIndex = i
			blk.Members = append(blk.Members, s)
		}
		a.unit.CommonBlocks = append(a.unit.CommonBlocks, blk)
	}

	// Pass 6: distribution directives.
	for _, d := range u.Decls {
		dd, ok := d.(*fortran.DistDecl)
		if !ok {
			continue
		}
		a.applyDistribute(dd)
	}

	// Pre-linker bindings for formal parameters (§5).
	for name, spec := range a.opts.ParamDists {
		s, ok := a.syms[name]
		if !ok || !s.IsParam {
			a.errorf(u.Line, "propagated distribution for unknown dummy argument %s", name)
			continue
		}
		if s.Kind != ir.Array {
			a.errorf(u.Line, "propagated distribution for scalar dummy %s", name)
			continue
		}
		if s.Dist != nil && !s.Dist.Equal(spec) {
			a.errorf(s.Line, "dummy %s declared %s but caller passes %s", name, s.Dist, &spec)
			continue
		}
		if len(spec.Dims) != len(s.Dims) {
			a.errorf(s.Line, "dummy %s has %d dims, incoming distribution has %d",
				name, len(s.Dims), len(spec.Dims))
			continue
		}
		sp := spec
		s.Dist = &sp
	}

	// Pass 7: equivalence — the compile-time reshape check of §6.
	for _, d := range u.Decls {
		ed, ok := d.(*fortran.EquivDecl)
		if !ok {
			continue
		}
		sa := a.lookupOrImplicit(ed.A, ed.Line)
		sb := a.lookupOrImplicit(ed.B, ed.Line)
		if sa.IsReshaped() || sb.IsReshaped() {
			a.errorf(ed.Line, "reshaped array cannot be equivalenced (%s, %s)", ed.A, ed.B)
		}
	}

	// Body.
	a.unit.Body = a.lowerStmts(u.Body)

	// Main program implicitly returns.
	if a.unit.IsProgram {
		a.unit.Body = append(a.unit.Body, &ir.Return{})
	} else {
		a.unit.Body = append(a.unit.Body, &ir.Return{})
	}
}

func (a *analyzer) lookupOrImplicit(name string, line int) *ir.Sym {
	if s, ok := a.syms[name]; ok {
		return s
	}
	s := &ir.Sym{Name: name, Type: implicitType(name), Kind: ir.Scalar, Line: line}
	a.syms[name] = s
	a.unit.AddSym(s)
	return s
}

// applyDistribute validates and attaches a c$distribute[_reshape].
func (a *analyzer) applyDistribute(dd *fortran.DistDecl) {
	s, ok := a.syms[dd.Array]
	if !ok {
		a.errorf(dd.Line, "distribute names unknown array %s", dd.Array)
		return
	}
	if s.Kind != ir.Array {
		a.errorf(dd.Line, "distribute target %s is not an array", dd.Array)
		return
	}
	if len(dd.Dims) != len(s.Dims) {
		a.errorf(dd.Line, "distribute for %s has %d specifiers, array has %d dimensions",
			dd.Array, len(dd.Dims), len(s.Dims))
		return
	}
	if s.Dist != nil {
		// "A particular array must be declared either distribute or
		// distribute_reshape ... and cannot be dynamically switched"
		// (§3.2); a duplicate directive is rejected outright.
		a.errorf(dd.Line, "%s already has a distribution (%s)", dd.Array, s.Dist)
		return
	}
	spec := dist.Spec{Reshape: dd.Reshape, Dims: make([]dist.Dim, len(dd.Dims))}
	for i, sd := range dd.Dims {
		switch sd.Kind {
		case fortran.DStar:
			spec.Dims[i].Kind = dist.Star
		case fortran.DBlock:
			spec.Dims[i].Kind = dist.Block
		case fortran.DCyclic:
			spec.Dims[i].Kind = dist.Cyclic
		case fortran.DCyclicExpr:
			spec.Dims[i].Kind = dist.BlockCyclic
			cv, ok := a.evalConst(sd.Chunk)
			if !ok || !cv.isInt || cv.i <= 0 {
				a.errorf(dd.Line, "cyclic chunk for %s dim %d must be a positive integer constant", dd.Array, i+1)
				spec.Dims[i].Chunk = 1
			} else {
				spec.Dims[i].Chunk = int(cv.i)
			}
		}
	}
	dd2 := spec.DistributedDims()
	if len(dd.Onto) > 0 {
		if len(dd.Onto) != len(dd2) {
			a.errorf(dd.Line, "onto has %d weights, %s has %d distributed dimensions",
				len(dd.Onto), dd.Array, len(dd2))
		} else {
			for i, oe := range dd.Onto {
				cv, ok := a.evalConst(oe)
				if !ok || !cv.isInt || cv.i <= 0 {
					a.errorf(dd.Line, "onto weight %d must be a positive integer constant", i+1)
					continue
				}
				spec.Dims[dd2[i]].Onto = int(cv.i)
			}
		}
	}
	if err := spec.Validate(); err != nil {
		a.errorf(dd.Line, "invalid distribution for %s: %v", dd.Array, err)
		return
	}
	if spec.Reshape {
		// Reshaped arrays need compile-time-known shape handling: each
		// distributed dimension's extent must be a constant unless the
		// array is a dummy (the clone knows the caller's constants are
		// checked at runtime).
		for _, d := range dd2 {
			if d < len(s.Dims) && s.Dims[d] == nil {
				a.errorf(dd.Line, "reshaped array %s cannot have an assumed-size distributed dimension", dd.Array)
			}
		}
	}
	sp := spec
	s.Dist = &sp
}
