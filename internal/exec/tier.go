package exec

import (
	"fmt"
	"os"
)

// Tier selects which bytecode execution tier interprets the program on
// the host: the classic switch-dispatch interpreter or the block-compiled
// fused-closure tier (internal/bytecode compile.go/compiled.go).
//
// Both tiers are bit-identical in simulated behavior — every charged
// cycle, stat counter, trap message, and quantum break point is the same;
// only host wall time differs. The tier axis is orthogonal to the Engine
// axis: any tier composes with any engine, including the parallel
// engine's speculative scout replays.
type Tier int

const (
	// TierAuto resolves to the compiled tier (it is a strict win once a
	// program runs more than a handful of quanta). The DSM_TIER
	// environment variable (classic|compiled|auto) overrides Auto — but
	// never an explicit Options.Tier — so CI can force a tier across an
	// existing test suite.
	TierAuto Tier = iota
	TierClassic
	TierCompiled
)

// ParseTier parses a -tier flag value.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "auto", "":
		return TierAuto, nil
	case "classic":
		return TierClassic, nil
	case "compiled":
		return TierCompiled, nil
	}
	return TierAuto, fmt.Errorf("unknown tier %q (accepted: classic, compiled, auto)", s)
}

func (t Tier) String() string {
	switch t {
	case TierClassic:
		return "classic"
	case TierCompiled:
		return "compiled"
	}
	return "auto"
}

// Resolve applies the DSM_TIER override and the auto rule, yielding the
// tier a run with this setting actually executes on. Callers that record
// host-performance measurements (bench_test's BENCH_sweeps.json) use it
// to note the tier the numbers were taken under.
func (t Tier) Resolve() Tier { return resolveTier(t) }

// resolveTier applies the DSM_TIER override and the auto rule.
func resolveTier(t Tier) Tier {
	if t == TierAuto {
		if env := os.Getenv("DSM_TIER"); env != "" {
			if pt, err := ParseTier(env); err == nil {
				t = pt
			}
		}
	}
	if t == TierAuto {
		t = TierCompiled
	}
	return t
}
