package exec

import (
	"reflect"
	"testing"

	"dsmdist/internal/link"
	"dsmdist/internal/machine"
	"dsmdist/internal/obj"
	"dsmdist/internal/ospage"
	"dsmdist/internal/rtl"
	"dsmdist/internal/workloads"
	"dsmdist/internal/xform"
)

// runL0 builds and runs the transpose workload with the memory system's L0
// fast-path memos on or off.
func runL0(t *testing.T, l0 bool) *Result {
	t.Helper()
	src := workloads.Transpose(32, 2, workloads.Reshaped)
	o, err := obj.Compile("t.f", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := link.Link([]*obj.Object{o}, link.Config{Opt: xform.O3(), RuntimeChecks: true})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	cfg := machine.Tiny(4)
	rt, err := rtl.Load(img.Res, cfg, ospage.FirstTouch)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rt.Sys.SetL0(l0)
	res, err := RunLoaded(rt, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestL0FastPathDoesNotPerturbSimulation is the whole-program counterpart
// of memsim's TestL0FastPathBitIdentical (and the analogue of the obs
// package's TestRecorderDoesNotPerturbSimulation): a full compile-link-run
// of a real workload must produce identical cycles, per-processor
// statistics, and results with the host-side L0 memos on and off.
func TestL0FastPathDoesNotPerturbSimulation(t *testing.T) {
	on := runL0(t, true)
	off := runL0(t, false)

	if on.Cycles != off.Cycles {
		t.Errorf("cycles: L0 on %d, off %d", on.Cycles, off.Cycles)
	}
	if on.Instrs != off.Instrs {
		t.Errorf("instrs: L0 on %d, off %d", on.Instrs, off.Instrs)
	}
	if on.Total != off.Total {
		t.Errorf("total stats diverge\n on  %+v\n off %+v", on.Total, off.Total)
	}
	if !reflect.DeepEqual(on.Stats, off.Stats) {
		for p := range on.Stats {
			if on.Stats[p] != off.Stats[p] {
				t.Errorf("proc %d stats diverge\n on  %+v\n off %+v",
					p, on.Stats[p], off.Stats[p])
			}
		}
	}

	// And the computed data must match, of course.
	aOn := on.RT.Gather(on.RT.ArrayByName("transp", "a"))
	aOff := off.RT.Gather(off.RT.ArrayByName("transp", "a"))
	if !reflect.DeepEqual(aOn, aOff) {
		t.Error("array contents diverge between L0 on and off")
	}
}
