package exec

import (
	"strings"
	"testing"

	"dsmdist/internal/link"
	"dsmdist/internal/machine"
	"dsmdist/internal/obj"
	"dsmdist/internal/ospage"
	"dsmdist/internal/xform"
)

func runSrc(t *testing.T, src string, nprocs int) (*Result, error) {
	t.Helper()
	o, err := obj.Compile("x.f", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := link.Link([]*obj.Object{o}, link.Config{Opt: xform.O3(), RuntimeChecks: true})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return Run(img.Res, machine.Tiny(nprocs), Options{Policy: ospage.FirstTouch})
}

func TestExplicitBarrierInsideRegion(t *testing.T) {
	// Each processor writes its partition, all barrier, then each reads a
	// neighbour's value written before the barrier. Without the
	// rendezvous this would race; with it every read sees the write.
	res, err := runSrc(t, `
      program p
      real*8 a(8), b(8)
      integer i
c$doacross local(i) shared(a, b)
      do i = 1, 8
        a(i) = dble(i) * 2.0
        call dsm_barrier
        b(i) = a(mod(i, 8) + 1)
      end do
      end
`, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := res.RT.ArrayByName("p", "b")
	b := res.RT.Gather(st)
	for i := 1; i <= 8; i++ {
		want := float64(i%8+1) * 2.0
		if b[i-1] != want {
			t.Fatalf("b(%d) = %v, want %v", i, b[i-1], want)
		}
	}
}

func TestForkJoinClocks(t *testing.T) {
	res, err := runSrc(t, `
      program p
      real*8 a(64)
      integer i
c$doacross local(i) shared(a)
      do i = 1, 64
        a(i) = dble(i)
      end do
      end
`, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The implicit end barrier synchronizes all clocks; the reported
	// wall time is the max, and every processor's clock equals it.
	for p := 0; p < 4; p++ {
		if c := res.RT.Sys.Clock(p); c != res.Cycles {
			// proc 0 runs serial epilogue after the region; others
			// stay at the barrier-release time.
			if p == 0 {
				continue
			}
			if c > res.Cycles {
				t.Fatalf("proc %d clock %d exceeds wall %d", p, c, res.Cycles)
			}
		}
	}
	if res.Cycles <= 0 || res.Instrs <= 0 {
		t.Fatal("counters missing")
	}
}

func TestRuntimeTrapSurfaces(t *testing.T) {
	_, err := runSrc(t, `
      program p
      real*8 a(10)
      integer i, k
      k = 0
c$doacross local(i) shared(a, k)
      do i = 1, 10
        a(i) = dble(i / k)
      end do
      end
`, 2)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("trap not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "processor") {
		t.Fatalf("error lacks processor context: %v", err)
	}
}

func TestTimerMeasuresSection(t *testing.T) {
	res, err := runSrc(t, `
      program p
      real*8 a(512)
      integer i
      do i = 1, 512
        a(i) = 0.0
      end do
      call dsm_timer_start
      do i = 1, 512
        a(i) = dble(i)
      end do
      call dsm_timer_stop
      do i = 1, 512
        a(i) = a(i) + 1.0
      end do
      end
`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimerCycles <= 0 || res.TimerCycles >= res.Cycles {
		t.Fatalf("timer section %d of total %d", res.TimerCycles, res.Cycles)
	}
	// Roughly a third of the work (three similar loops).
	if res.TimerCycles > res.Cycles/2 {
		t.Fatalf("timer section %d too large vs total %d", res.TimerCycles, res.Cycles)
	}
}

func TestSpeedupHelper(t *testing.T) {
	if Speedup(100, 25) != 4.0 || Speedup(100, 0) != 0 {
		t.Fatal("Speedup wrong")
	}
}

func TestSerialBarrierIsNoop(t *testing.T) {
	res, err := runSrc(t, `
      program p
      real*8 x
      call dsm_barrier
      x = 1.0
      call dsm_barrier
      end
`, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no progress")
	}
}

func TestManyRegionsSequence(t *testing.T) {
	// Ten successive doacross regions: fork/join bookkeeping must not
	// leak state between regions.
	res, err := runSrc(t, `
      program p
      real*8 a(32)
      integer i, it
      do it = 1, 10
c$doacross local(i) shared(a)
      do i = 1, 32
        a(i) = a(i) + 1.0
      end do
      end do
      end
`, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := res.RT.Gather(res.RT.ArrayByName("p", "a"))
	for i, v := range a {
		if v != 10.0 {
			t.Fatalf("a[%d] = %v", i, v)
		}
	}
}
