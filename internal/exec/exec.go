// Package exec runs compiled images on the simulated machine: a serial
// thread on processor 0 executes the program; each doacross Region fans out
// onto every processor, with threads interleaved in fixed quanta so the
// shared memory system sees realistic contention; implicit barriers close
// every region (paper §3.1 "an implicit barrier at the end of the doacross
// loop"); explicit dsm_barrier calls rendezvous inside regions.
//
// Two engines execute regions: the serial engine interleaves all simulated
// processors on one goroutine; the parallel engine (parallel.go) runs them
// on real host cores in speculative epochs. Both are bit-identical in every
// simulated cycle, stat, and recorder event.
package exec

import (
	"fmt"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/codegen"
	"dsmdist/internal/hostpool"
	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/rtl"
)

// Options configure a run.
type Options struct {
	// Policy is the default page-allocation policy for unplaced pages
	// (first-touch or round-robin, §2).
	Policy ospage.Policy
	// Quantum is the instruction interleave granularity (default 2000).
	Quantum int
	// MaxQuanta bounds total scheduling rounds as a runaway guard
	// (default 1<<34; raise with dsmrun -max-quanta).
	MaxQuanta int64
	// Rec, when non-nil, receives observability events from the whole
	// stack (load-time placement, memory system, regions, barriers).
	Rec *obs.Recorder
	// RedistSerial runs c$redistribute under the legacy serial cost model
	// (a page walk charged to the calling processor) instead of the
	// scheduled bulk-transfer collective — the -redist=serial A/B switch.
	RedistSerial bool
	// Engine selects the host execution engine (serial, parallel, auto).
	// Results are bit-identical either way; see Engine.
	Engine Engine
	// Workers fixes the number of host goroutines the parallel engine may
	// use per region. 0 (the default) draws from the shared hostpool
	// budget each region, cooperating with experiments.ForEach; the
	// DSM_WORKERS environment variable fills an unset value.
	Workers int
	// Tier selects the bytecode execution tier (classic, compiled, auto).
	// Results are bit-identical either way; see Tier.
	Tier Tier
}

// Result is a completed run.
type Result struct {
	RT     *rtl.Runtime
	Cycles int64 // wall-clock cycles (max over processors)
	Stats  []memsim.ProcStats
	Total  memsim.ProcStats
	Pages  ospage.Stats

	// Executed-operation counters across all threads (Table 2 reads the
	// divide counts).
	HwDiv   int64
	SoftDiv int64
	Instrs  int64

	// TimerCycles is the dsm_timer region-of-interest time, 0 when the
	// program never called the timer.
	TimerCycles int64

	// EngineUsed is the engine that actually ran (after auto/env
	// resolution); diagnostics only.
	EngineUsed Engine
	// TierUsed is the execution tier that actually ran (after auto/env
	// resolution); diagnostics only.
	TierUsed Tier
	// EpochsCommitted / EpochsFallback count the parallel engine's
	// speculative epochs that published vs. re-ran serially (always 0
	// under the serial engine); diagnostics only.
	EpochsCommitted int64
	EpochsFallback  int64
}

// Seconds converts the run's cycles to seconds on the simulated clock.
func (r *Result) Seconds() float64 { return r.RT.Cfg.Seconds(r.Cycles) }

// Run loads and executes a compiled image.
func Run(res *codegen.Result, cfg *machine.Config, opts Options) (*Result, error) {
	rt, err := rtl.LoadObs(res, cfg, opts.Policy, opts.Rec)
	if err != nil {
		return nil, err
	}
	return RunLoaded(rt, opts)
}

// RunLoaded executes an already-loaded runtime (tests pre-initialize
// arrays through it).
func RunLoaded(rt *rtl.Runtime, opts Options) (*Result, error) {
	if opts.Rec != nil && rt.Rec == nil {
		rt.AttachRecorder(opts.Rec)
	}
	if opts.RedistSerial {
		rt.RedistSerial = true
	}
	cfg := rt.Cfg
	quantum := opts.Quantum
	if quantum <= 0 {
		quantum = 2000
	}
	maxQuanta := opts.MaxQuanta
	if maxQuanta <= 0 {
		maxQuanta = 1 << 34
	}
	engine := resolveEngine(opts.Engine, cfg.NProcs)
	tier := resolveTier(opts.Tier)
	workers := resolveWorkers(opts.Workers)
	costs := bytecode.NewCosts(cfg)

	// Derived per-function metadata (out-arg buffer sizes); idempotent,
	// and needed by both tiers' frame preallocation.
	rt.Prog.Finalize()
	var cp *bytecode.Compiled
	if tier == TierCompiled {
		cp = bytecode.CompileProgram(rt.Prog, costs)
	}

	serial := bytecode.NewThread(0, rt.Sys, rt.Prog, rt, costs, rt.Prog.Main, nil,
		rt.StackBase[0], rt.StackEnd[0])
	serial.UseCompiled(cp)

	acc := &Result{RT: rt, EngineUsed: engine, TierUsed: tier}
	var rounds int64
	for {
		rounds++
		if rounds > maxQuanta {
			return nil, fmt.Errorf("exec: exceeded quantum budget of %d (infinite loop? raise with -max-quanta)", maxQuanta)
		}
		switch serial.Step(quantum) {
		case bytecode.Running:
		case bytecode.Done:
			if serial.Err != nil {
				return nil, serial.Err
			}
			acc.HwDiv += serial.HwDiv
			acc.SoftDiv += serial.SoftDiv
			acc.Instrs += serial.Instrs
			finish(acc)
			return acc, nil
		case bytecode.AtBarrier:
			// A barrier in serial code synchronizes nothing.
		case bytecode.AtParCall:
			var err error
			if engine == EngineParallel {
				err = runRegionWithWorkers(rt, costs, serial, quantum, maxQuanta, workers, acc)
			} else {
				err = runRegion(rt, costs, serial, quantum, maxQuanta, acc)
			}
			if err != nil {
				return nil, err
			}
			serial.Resume()
		}
	}
}

// runRegionWithWorkers sizes the parallel engine's worker set for one
// region and runs it. With Workers unset we draw extra workers from the
// shared hostpool budget (the caller's goroutine is always one worker);
// an explicit Workers bypasses the pool so tests can force concurrency on
// small hosts.
func runRegionWithWorkers(rt *rtl.Runtime, costs *bytecode.Costs, serial *bytecode.Thread,
	quantum int, maxQuanta int64, workers int, acc *Result) error {

	np := rt.Cfg.NProcs
	if workers <= 0 {
		extra := hostpool.Acquire(np - 1)
		defer hostpool.Release(extra)
		workers = 1 + extra
	}
	if workers > np {
		workers = np
	}
	return runRegionParallel(rt, costs, serial, quantum, maxQuanta, workers, acc)
}

func finish(r *Result) {
	rt := r.RT
	r.Pages = rt.Pages.Stats()
	r.TimerCycles = rt.TimerCycles
	for p := 0; p < rt.Cfg.NProcs; p++ {
		st := rt.Sys.Stats(p)
		r.Stats = append(r.Stats, st)
		r.Total.Add(st)
		if c := rt.Sys.Clock(p); c > r.Cycles {
			r.Cycles = c
		}
	}
	rt.Rec.Finish(r.Cycles)
}

// Speedup is a convenience for experiment harnesses: serial cycles over
// parallel cycles.
func Speedup(serialCycles, parallelCycles int64) float64 {
	if parallelCycles == 0 {
		return 0
	}
	return float64(serialCycles) / float64(parallelCycles)
}
