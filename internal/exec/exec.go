// Package exec runs compiled images on the simulated machine: a serial
// thread on processor 0 executes the program; each doacross Region fans out
// onto every processor, with threads interleaved in fixed quanta so the
// shared memory system sees realistic contention; implicit barriers close
// every region (paper §3.1 "an implicit barrier at the end of the doacross
// loop"); explicit dsm_barrier calls rendezvous inside regions.
package exec

import (
	"fmt"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/codegen"
	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/rtl"
)

// Options configure a run.
type Options struct {
	// Policy is the default page-allocation policy for unplaced pages
	// (first-touch or round-robin, §2).
	Policy ospage.Policy
	// Quantum is the instruction interleave granularity (default 2000).
	Quantum int
	// MaxQuanta bounds total scheduling rounds as a runaway guard
	// (default 1<<40 instructions equivalent).
	MaxQuanta int64
	// Rec, when non-nil, receives observability events from the whole
	// stack (load-time placement, memory system, regions, barriers).
	Rec *obs.Recorder
	// RedistSerial runs c$redistribute under the legacy serial cost model
	// (a page walk charged to the calling processor) instead of the
	// scheduled bulk-transfer collective — the -redist=serial A/B switch.
	RedistSerial bool
}

// Result is a completed run.
type Result struct {
	RT     *rtl.Runtime
	Cycles int64 // wall-clock cycles (max over processors)
	Stats  []memsim.ProcStats
	Total  memsim.ProcStats
	Pages  ospage.Stats

	// Executed-operation counters across all threads (Table 2 reads the
	// divide counts).
	HwDiv   int64
	SoftDiv int64
	Instrs  int64

	// TimerCycles is the dsm_timer region-of-interest time, 0 when the
	// program never called the timer.
	TimerCycles int64
}

// Seconds converts the run's cycles to seconds on the simulated clock.
func (r *Result) Seconds() float64 { return r.RT.Cfg.Seconds(r.Cycles) }

// Run loads and executes a compiled image.
func Run(res *codegen.Result, cfg *machine.Config, opts Options) (*Result, error) {
	rt, err := rtl.LoadObs(res, cfg, opts.Policy, opts.Rec)
	if err != nil {
		return nil, err
	}
	return RunLoaded(rt, opts)
}

// RunLoaded executes an already-loaded runtime (tests pre-initialize
// arrays through it).
func RunLoaded(rt *rtl.Runtime, opts Options) (*Result, error) {
	if opts.Rec != nil && rt.Rec == nil {
		rt.AttachRecorder(opts.Rec)
	}
	if opts.RedistSerial {
		rt.RedistSerial = true
	}
	cfg := rt.Cfg
	quantum := opts.Quantum
	if quantum <= 0 {
		quantum = 2000
	}
	maxQuanta := opts.MaxQuanta
	if maxQuanta <= 0 {
		maxQuanta = 1 << 34
	}
	costs := bytecode.NewCosts(cfg)

	serial := bytecode.NewThread(0, rt.Sys, rt.Prog, rt, costs, rt.Prog.Main, nil,
		rt.StackBase[0], rt.StackEnd[0])

	acc := &Result{RT: rt}
	var rounds int64
	for {
		rounds++
		if rounds > maxQuanta {
			return nil, fmt.Errorf("exec: exceeded quantum budget (infinite loop?)")
		}
		switch serial.Step(quantum) {
		case bytecode.Running:
		case bytecode.Done:
			if serial.Err != nil {
				return nil, serial.Err
			}
			acc.HwDiv += serial.HwDiv
			acc.SoftDiv += serial.SoftDiv
			acc.Instrs += serial.Instrs
			finish(acc)
			return acc, nil
		case bytecode.AtBarrier:
			// A barrier in serial code synchronizes nothing.
		case bytecode.AtParCall:
			if err := runRegion(rt, costs, serial, quantum, maxQuanta, acc); err != nil {
				return nil, err
			}
			serial.Resume()
		}
	}
}

// cycleQuantum bounds how far (in cycles) one processor may run ahead of
// the others inside a region; it must stay small relative to the memsim
// bandwidth-window ring so contention is observed accurately.
const cycleQuantum = 4000

// runRegion fans a region function out to all processors and runs them to
// completion, always advancing the processor with the smallest clock.
func runRegion(rt *rtl.Runtime, costs *bytecode.Costs, serial *bytecode.Thread,
	quantum int, maxQuanta int64, acc *Result) error {

	cfg := rt.Cfg
	np := cfg.NProcs
	sys := rt.Sys
	rec := rt.Rec
	rt.ResetDynamic()

	// Fork: idle processors jump to the master's clock; everyone pays
	// the dispatch cost.
	t0 := sys.Clock(0)
	if rec != nil {
		fn := rt.Prog.Fns[serial.ParFn]
		rec.RegionBegin(fn.Name, fn.File, fn.Line, t0, np)
	}
	procs := make([]int, np)
	for p := 0; p < np; p++ {
		procs[p] = p
		if sys.Clock(p) < t0 {
			sys.SetClock(p, t0)
		}
		sys.AddCycles(p, int64(cfg.ForkCyc))
	}

	threads := make([]*bytecode.Thread, np)
	for p := 0; p < np; p++ {
		args := make([]int64, len(serial.ParArgs))
		copy(args, serial.ParArgs)
		sp := rt.StackBase[p]
		end := rt.StackEnd[p]
		if p == 0 {
			sp = serial.SP // above the serial frames
		}
		threads[p] = bytecode.NewThread(p, sys, rt.Prog, rt, costs, serial.ParFn, args, sp, end)
	}

	done := make([]bool, np)
	atBarrier := make([]bool, np)
	remaining := np
	lastSel := -1
	var rounds int64
	for remaining > 0 {
		rounds++
		if rounds > maxQuanta {
			return fmt.Errorf("exec: region exceeded quantum budget")
		}
		// Run the runnable thread with the smallest clock, so simulated
		// time advances roughly in lockstep and the node-bandwidth
		// model sees a fair arrival order (threads scheduled by
		// instruction count alone would let cache-hitting threads race
		// far ahead in cycle time).
		sel := -1
		var selClock int64
		for p := 0; p < np; p++ {
			if done[p] || atBarrier[p] {
				continue
			}
			if c := sys.Clock(p); sel < 0 || c < selClock {
				sel, selClock = p, c
			}
		}
		if sel >= 0 {
			if rec != nil && sel != lastSel {
				rec.QuantumSwitch(sel)
				lastSel = sel
			}
			switch threads[sel].StepCycles(quantum, cycleQuantum) {
			case bytecode.Running:
			case bytecode.Done:
				if threads[sel].Err != nil {
					return fmt.Errorf("processor %d: %w", sel, threads[sel].Err)
				}
				done[sel] = true
				remaining--
			case bytecode.AtBarrier:
				atBarrier[sel] = true
			case bytecode.AtParCall:
				return fmt.Errorf("processor %d: nested doacross regions are not supported", sel)
			}
			continue
		}
		// No runnable thread: release the explicit barrier once every
		// live thread has arrived.
		var waiting []int
		for p := 0; p < np; p++ {
			if atBarrier[p] {
				waiting = append(waiting, p)
			}
		}
		if len(waiting) == 0 {
			return fmt.Errorf("exec: region scheduler wedged")
		}
		sys.Barrier(waiting)
		for _, p := range waiting {
			atBarrier[p] = false
		}
	}

	// Implicit end-of-doacross barrier across all processors.
	var ends []int64
	if rec != nil {
		ends = make([]int64, np)
		for p := 0; p < np; p++ {
			ends[p] = sys.Clock(p)
		}
	}
	sys.Barrier(procs)
	if rec != nil {
		rec.RegionEnd(ends, sys.Clock(0))
	}
	for _, th := range threads {
		acc.HwDiv += th.HwDiv
		acc.SoftDiv += th.SoftDiv
		acc.Instrs += th.Instrs
	}
	return nil
}

func finish(r *Result) {
	rt := r.RT
	r.Pages = rt.Pages.Stats()
	r.TimerCycles = rt.TimerCycles
	for p := 0; p < rt.Cfg.NProcs; p++ {
		st := rt.Sys.Stats(p)
		r.Stats = append(r.Stats, st)
		r.Total.Add(st)
		if c := rt.Sys.Clock(p); c > r.Cycles {
			r.Cycles = c
		}
	}
	rt.Rec.Finish(r.Cycles)
}

// Speedup is a convenience for experiment harnesses: serial cycles over
// parallel cycles.
func Speedup(serialCycles, parallelCycles int64) float64 {
	if parallelCycles == 0 {
		return 0
	}
	return float64(serialCycles) / float64(parallelCycles)
}
