package exec

import (
	"fmt"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/memsim"
	"dsmdist/internal/obs"
	"dsmdist/internal/rtl"
)

// cycleQuantum bounds how far (in cycles) one processor may run ahead of
// the others inside a region; it must stay small relative to the memsim
// bandwidth-window ring so contention is observed accurately. It is also
// the epoch length of the parallel engine.
const cycleQuantum = 4000

// regionRun is the execution state of one doacross region, shared by the
// serial and parallel engines. The serial engine is exactly
// serialWindow(maxInt64); the parallel engine interleaves speculative
// epochs with serialWindow(epochEnd) fallbacks over the same state, which
// is what makes the fallback path bit-identical by construction.
type regionRun struct {
	rt        *rtl.Runtime
	sys       *memsim.System
	rec       *obs.Recorder
	threads   []*bytecode.Thread
	procs     []int
	done      []bool
	atBarrier []bool
	remaining int
	lastSel   int
	rounds    int64
	maxQuanta int64
	quantum   int
	np        int
}

// newRegionRun performs the fork prologue: clocks join the master, every
// processor pays the dispatch cost, and one thread per processor is
// created to run the region function. rtif is the Runtime interface the
// threads dispatch RTCs through (the parallel engine wraps rt in a scout
// gate).
func newRegionRun(rt *rtl.Runtime, costs *bytecode.Costs, serial *bytecode.Thread,
	quantum int, maxQuanta int64, rtif bytecode.Runtime) *regionRun {

	cfg := rt.Cfg
	np := cfg.NProcs
	sys := rt.Sys
	rec := rt.Rec
	rt.ResetDynamic()

	// Fork: idle processors jump to the master's clock; everyone pays
	// the dispatch cost.
	t0 := sys.Clock(0)
	if rec != nil {
		fn := rt.Prog.Fns[serial.ParFn]
		rec.RegionBegin(fn.Name, fn.File, fn.Line, t0, np)
	}
	procs := make([]int, np)
	for p := 0; p < np; p++ {
		procs[p] = p
		if sys.Clock(p) < t0 {
			sys.SetClock(p, t0)
		}
		sys.AddCycles(p, int64(cfg.ForkCyc))
	}

	threads := make([]*bytecode.Thread, np)
	for p := 0; p < np; p++ {
		args := make([]int64, len(serial.ParArgs))
		copy(args, serial.ParArgs)
		sp := rt.StackBase[p]
		end := rt.StackEnd[p]
		if p == 0 {
			sp = serial.SP // above the serial frames
		}
		threads[p] = bytecode.NewThread(p, sys, rt.Prog, rtif, costs, serial.ParFn, args, sp, end)
		threads[p].UseCompiled(serial.CompiledTier())
	}

	return &regionRun{
		rt:        rt,
		sys:       sys,
		rec:       rec,
		threads:   threads,
		procs:     procs,
		done:      make([]bool, np),
		atBarrier: make([]bool, np),
		remaining: np,
		lastSel:   -1,
		maxQuanta: maxQuanta,
		quantum:   quantum,
		np:        np,
	}
}

func errRegionBudget(limit int64) error {
	return fmt.Errorf("exec: region exceeded quantum budget of %d (raise with -max-quanta)", limit)
}

// serialWindow runs the region's serial scheduling loop — always advancing
// the runnable thread with the smallest clock, so simulated time advances
// roughly in lockstep and the node-bandwidth model sees a fair arrival
// order — until every thread finished, an error occurs, or every runnable
// thread's clock has reached `until` (explicit-barrier releases still
// happen inside the window, exactly as the unbounded loop would).
func (rr *regionRun) serialWindow(until int64) error {
	for rr.remaining > 0 {
		sel := -1
		var selClock int64
		for p := 0; p < rr.np; p++ {
			if rr.done[p] || rr.atBarrier[p] {
				continue
			}
			if c := rr.sys.Clock(p); sel < 0 || c < selClock {
				sel, selClock = p, c
			}
		}
		if sel >= 0 && selClock >= until {
			return nil // window exhausted; caller decides what's next
		}
		rr.rounds++
		if rr.rounds > rr.maxQuanta {
			return errRegionBudget(rr.maxQuanta)
		}
		if sel >= 0 {
			if rr.rec != nil && sel != rr.lastSel {
				rr.rec.QuantumSwitch(sel)
				rr.lastSel = sel
			}
			switch rr.threads[sel].StepCycles(rr.quantum, cycleQuantum) {
			case bytecode.Running:
			case bytecode.Done:
				if rr.threads[sel].Err != nil {
					return fmt.Errorf("processor %d: %w", sel, rr.threads[sel].Err)
				}
				rr.done[sel] = true
				rr.remaining--
			case bytecode.AtBarrier:
				rr.atBarrier[sel] = true
			case bytecode.AtParCall:
				return fmt.Errorf("processor %d: nested doacross regions are not supported", sel)
			}
			continue
		}
		if err := rr.releaseBarrier(); err != nil {
			return err
		}
	}
	return nil
}

// releaseBarrier releases the explicit dsm_barrier rendezvous once every
// live thread has arrived (no runnable thread remains).
func (rr *regionRun) releaseBarrier() error {
	var waiting []int
	for p := 0; p < rr.np; p++ {
		if rr.atBarrier[p] {
			waiting = append(waiting, p)
		}
	}
	if len(waiting) == 0 {
		return fmt.Errorf("exec: region scheduler wedged")
	}
	rr.sys.Barrier(waiting)
	for _, p := range waiting {
		rr.atBarrier[p] = false
	}
	return nil
}

// finishRegion runs the implicit end-of-doacross barrier across all
// processors and folds the threads' operation counters into the result.
func (rr *regionRun) finishRegion(acc *Result) error {
	var ends []int64
	if rr.rec != nil {
		ends = make([]int64, rr.np)
		for p := 0; p < rr.np; p++ {
			ends[p] = rr.sys.Clock(p)
		}
	}
	rr.sys.Barrier(rr.procs)
	if rr.rec != nil {
		rr.rec.RegionEnd(ends, rr.sys.Clock(0))
	}
	for _, th := range rr.threads {
		acc.HwDiv += th.HwDiv
		acc.SoftDiv += th.SoftDiv
		acc.Instrs += th.Instrs
	}
	return nil
}

// runRegion is the serial engine's region executor: the unbounded serial
// window.
func runRegion(rt *rtl.Runtime, costs *bytecode.Costs, serial *bytecode.Thread,
	quantum int, maxQuanta int64, acc *Result) error {

	rr := newRegionRun(rt, costs, serial, quantum, maxQuanta, rt)
	if err := rr.serialWindow(1 << 62); err != nil {
		return err
	}
	return rr.finishRegion(acc)
}
