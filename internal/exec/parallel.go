package exec

import (
	"errors"
	"sync"
	"sync/atomic"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/obs"
	"dsmdist/internal/rtl"
)

// The parallel engine runs each simulated processor's bytecode thread on a
// real host goroutine, in barrier-synchronous epochs of cycleQuantum
// simulated cycles, and is bit-identical to the serial engine:
//
//  1. Epoch: all runnable threads whose clock lies in [minClock,
//     minClock+cycleQuantum) run concurrently as memsim *scouts* — a
//     read-only pass over shared state with per-processor overlays for
//     directory lines, memory words, and bandwidth bookings (see
//     internal/memsim/scout.go). Processor-private state (caches, TLB,
//     clock, stats) advances lock-free with undo journals.
//  2. Validation: at the epoch barrier the overlays are checked for
//     conflicts — two scouts touching the same directory line, or
//     bandwidth bookings that would have made another scout wait.
//  3. Commit: a conflict-free epoch publishes every overlay; observability
//     events buffered per processor are replayed in the exact serial
//     schedule order (quanta merged by (start clock, proc id) — provably
//     the order the serial scheduler would have used).
//  4. Fallback: any conflict or abort (page fault, cross-processor
//     invalidation, non-whitelisted runtime call, trap) rolls the epoch
//     back and re-runs the same window through serialWindow — literally
//     the serial engine's loop — so divergence is impossible by
//     construction.
var errScoutRTC = errors.New("exec: runtime call aborted speculative epoch")

// gateRT wraps the real runtime so speculative quanta cannot mutate
// runtime-library state. Whitelisted calls are pure (portion bounds, nest
// grid) or touch nothing (dsm_barrier parks the thread); everything else
// aborts the scout, and the serial fallback re-executes the call for real.
type gateRT struct {
	rt *rtl.Runtime
}

func (g *gateRT) RTCall(t *bytecode.Thread, id int, args []int64) (int64, error) {
	if !g.rt.Sys.ScoutArmed(t.Proc) {
		return g.rt.RTCall(t, id, args)
	}
	switch id {
	case bytecode.RTBarrier, bytecode.RTPortionLo, bytecode.RTPortionHi, bytecode.RTNestGrid:
		return g.rt.RTCall(t, id, args)
	}
	g.rt.Sys.AbortScoutRTC(t.Proc)
	return 0, errScoutRTC
}

// scoutResult is one scout's outcome for an epoch.
type scoutResult struct {
	quanta  int64 // StepCycles calls made (== serial scheduling rounds)
	done    bool  // thread finished cleanly
	barrier bool  // thread parked at an explicit barrier
	abort   bool  // anything that demands the serial fallback
}

// runRegionParallel executes one doacross region with the speculative
// epoch engine. workers >= 1 host goroutines (including the caller's) run
// the scouts; with workers == 1 the epochs still go through the scout
// machinery, which keeps the engine's behavior independent of host size.
func runRegionParallel(rt *rtl.Runtime, costs *bytecode.Costs, serial *bytecode.Thread,
	quantum int, maxQuanta int64, workers int, acc *Result) error {

	gate := &gateRT{rt: rt}
	rr := newRegionRun(rt, costs, serial, quantum, maxQuanta, gate)
	sys := rr.sys

	var bufs []*obs.ProcBuffer
	if rr.rec != nil {
		bufs = make([]*obs.ProcBuffer, rr.np)
		for p := range bufs {
			bufs[p] = obs.NewProcBuffer()
		}
	}
	snaps := make([]*bytecode.ThreadSnapshot, rr.np)
	results := make([]scoutResult, rr.np)
	cands := make([]int, 0, rr.np)

	for rr.remaining > 0 {
		// Plan the next epoch: the window starts at the smallest runnable
		// clock and spans one cycleQuantum.
		minC := int64(-1)
		for p := 0; p < rr.np; p++ {
			if rr.done[p] || rr.atBarrier[p] {
				continue
			}
			if c := sys.Clock(p); minC < 0 || c < minC {
				minC = c
			}
		}
		if minC < 0 {
			// Everyone parked: release the explicit barrier, exactly one
			// serial scheduling round.
			rr.rounds++
			if rr.rounds > rr.maxQuanta {
				return errRegionBudget(rr.maxQuanta)
			}
			if err := rr.releaseBarrier(); err != nil {
				return err
			}
			continue
		}
		epochEnd := minC + cycleQuantum
		cands = cands[:0]
		for p := 0; p < rr.np; p++ {
			if !rr.done[p] && !rr.atBarrier[p] && sys.Clock(p) < epochEnd {
				cands = append(cands, p)
			}
		}
		if len(cands) < 2 || workers < 2 {
			// Not worth speculating; run the window serially (identical
			// by definition).
			if err := rr.serialWindow(epochEnd); err != nil {
				return err
			}
			continue
		}

		// Speculate: snapshot threads, arm scouts, fan out.
		for _, c := range cands {
			snaps[c] = rr.threads[c].Snapshot()
			var buf *obs.ProcBuffer
			if bufs != nil {
				buf = bufs[c]
			}
			sys.ArmScout(c, buf)
			results[c] = scoutResult{}
		}
		rr.runScouts(cands, epochEnd, workers, bufs, results)

		ok := true
		for _, c := range cands {
			if results[c].abort || sys.ScoutAborted(c) {
				ok = false
				break
			}
		}
		if ok {
			ok = sys.ValidateScouts(cands)
		}
		if !ok {
			for _, c := range cands {
				sys.AbortScout(c)
				rr.threads[c].Restore(snaps[c])
			}
			acc.EpochsFallback++
			rr.rec.EpochOutcome(false)
			if err := rr.serialWindow(epochEnd); err != nil {
				return err
			}
			continue
		}
		acc.EpochsCommitted++

		// Commit: publish overlays, account the scheduling rounds the
		// serial engine would have spent, replay observability events in
		// serial order, and apply thread outcomes.
		var rounds int64
		for _, c := range cands {
			sys.CommitScout(c)
			rounds += results[c].quanta
		}
		rr.rounds += rounds
		if rr.rounds > rr.maxQuanta {
			return errRegionBudget(rr.maxQuanta)
		}
		if rr.rec != nil {
			rr.replayEpoch(cands, bufs)
		}
		// Everything replayed so far is in committed serial order: let the
		// streaming layer flush it.
		rr.rec.EpochOutcome(true)
		for _, c := range cands {
			if results[c].done {
				rr.done[c] = true
				rr.remaining--
			}
			if results[c].barrier {
				rr.atBarrier[c] = true
			}
		}
	}
	return rr.finishRegion(acc)
}

// runScouts drives the candidates' scout passes on min(workers,
// len(cands)) goroutines, the caller's included. Each worker claims
// candidates off a shared counter; a scout runs until its clock leaves the
// epoch window, it finishes, parks at a barrier, or aborts.
func (rr *regionRun) runScouts(cands []int, epochEnd int64, workers int,
	bufs []*obs.ProcBuffer, results []scoutResult) {

	nw := workers
	if nw > len(cands) {
		nw = len(cands)
	}
	var next atomic.Int32
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(cands) {
				return
			}
			c := cands[i]
			results[c] = rr.scoutOne(c, epochEnd, bufs)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// scoutOne runs one processor's thread speculatively to the end of the
// epoch window. Quanta are counted exactly as the serial scheduler would
// (one round per StepCycles call).
func (rr *regionRun) scoutOne(c int, epochEnd int64, bufs []*obs.ProcBuffer) scoutResult {
	var res scoutResult
	th := rr.threads[c]
	var buf *obs.ProcBuffer
	if bufs != nil {
		buf = bufs[c]
	}
	for {
		if rr.sys.ScoutAborted(c) {
			res.abort = true
			return res
		}
		if rr.sys.Clock(c) >= epochEnd {
			break
		}
		res.quanta++
		if buf != nil {
			buf.BeginQuantum(rr.sys.Clock(c))
		}
		switch th.StepCycles(rr.quantum, cycleQuantum) {
		case bytecode.Running:
		case bytecode.Done:
			if th.Err != nil {
				// Traps (including the gate's sentinel) re-execute in the
				// serial fallback so errors surface in serial order.
				res.abort = true
				return res
			}
			res.done = true
			goto out
		case bytecode.AtBarrier:
			res.barrier = true
			goto out
		case bytecode.AtParCall:
			res.abort = true
			return res
		}
	}
out:
	if rr.sys.ScoutAborted(c) {
		res.abort = true
		return res
	}
	if buf != nil {
		buf.EndEpoch()
	}
	return res
}

// replayEpoch merges the candidates' buffered quanta by (start clock, proc
// id) — the order the serial scheduler provably executes them in — and
// replays their events into the recorder, synthesizing the QuantumSwitch
// stream the serial engine would have emitted.
func (rr *regionRun) replayEpoch(cands []int, bufs []*obs.ProcBuffer) {
	idx := make(map[int]int, len(cands))
	for {
		sel := -1
		var selStart int64
		for _, c := range cands {
			i := idx[c]
			if i >= bufs[c].NumQuanta() {
				continue
			}
			if s := bufs[c].QuantumStart(i); sel < 0 || s < selStart || (s == selStart && c < sel) {
				sel, selStart = c, s
			}
		}
		if sel < 0 {
			return
		}
		if sel != rr.lastSel {
			rr.rec.QuantumSwitch(sel)
			rr.lastSel = sel
		}
		bufs[sel].ReplayQuantum(idx[sel], sel, rr.rec)
		idx[sel]++
	}
}
