package exec

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dsmdist/internal/link"
	"dsmdist/internal/machine"
	"dsmdist/internal/obj"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/xform"
)

// engineSrc mixes the behaviors the parallel engine must get right:
// distributed arrays with disjoint partitions (epochs commit), a shared
// barrier rendezvous inside a region, a redistribute (runtime call →
// serial fallback), integer divides (operation counters), and a serial
// tail between regions.
const engineSrc = `
      program p
      integer n
      parameter (n = 96)
      real*8 a(n, n), b(n)
c$distribute a(*, block)
      integer i, j, it
c$doacross nest(j, i) local(i, j) shared(a) affinity(j, i) = data(a(i, j))
      do j = 1, n
        do i = 1, n
          a(i, j) = dble(i) + dble(j)
        end do
      end do
      do it = 1, 2
c$doacross local(i, j) shared(a) affinity(j) = data(a(1, j))
      do j = 1, n
        do i = 2, n
          a(i, j) = a(i, j) + a(i-1, j) * 0.5
        end do
      end do
      end do
c$redistribute a(block, *)
c$doacross local(i, j) shared(a) affinity(i) = data(a(i, 1))
      do i = 1, n
        do j = 2, n
          a(i, j) = a(i, j) + a(i, j-1) * 0.5
        end do
      end do
c$doacross local(i) shared(b)
      do i = 1, n
        b(i) = dble(mod(i * 7, 13)) / dble(i)
        call dsm_barrier
        b(i) = b(i) + b(mod(i, n) + 1) * 1.0d-9
      end do
      end
`

func compileSrc(t *testing.T, src string) *link.Image {
	t.Helper()
	o, err := obj.Compile("x.f", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := link.Link([]*obj.Object{o}, link.Config{Opt: xform.O3(), RuntimeChecks: true})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

// runEngine executes src on nprocs simulated processors with the given
// engine and returns the result plus the serialized trace bytes.
func runEngine(t *testing.T, src string, nprocs int, eng Engine, workers int) (*Result, []byte) {
	t.Helper()
	img := compileSrc(t, src)
	cfg := machine.Tiny(nprocs)
	rec := obs.NewRecorder(cfg)
	rec.EnableTrace(1 << 20)
	res, err := Run(img.Res, cfg, Options{
		Policy:  ospage.FirstTouch,
		Rec:     rec,
		Engine:  eng,
		Workers: workers,
	})
	if err != nil {
		t.Fatalf("%v engine: %v", eng, err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return res, buf.Bytes()
}

// checkIdentical asserts the two results are bit-identical in every
// simulated quantity (wall time excluded by construction — it isn't in
// Result).
func checkIdentical(t *testing.T, label string, s, p *Result, st, pt []byte) {
	t.Helper()
	if s.Cycles != p.Cycles {
		t.Errorf("%s: cycles %d (serial) vs %d (parallel)", label, s.Cycles, p.Cycles)
	}
	if !reflect.DeepEqual(s.Stats, p.Stats) {
		for i := range s.Stats {
			if s.Stats[i] != p.Stats[i] {
				t.Errorf("%s: proc %d stats diverge:\n serial   %+v\n parallel %+v",
					label, i, s.Stats[i], p.Stats[i])
			}
		}
	}
	if s.Total != p.Total {
		t.Errorf("%s: totals diverge", label)
	}
	if !reflect.DeepEqual(s.Pages, p.Pages) {
		t.Errorf("%s: page stats diverge: %+v vs %+v", label, s.Pages, p.Pages)
	}
	if s.HwDiv != p.HwDiv || s.SoftDiv != p.SoftDiv || s.Instrs != p.Instrs {
		t.Errorf("%s: op counters diverge: (%d,%d,%d) vs (%d,%d,%d)", label,
			s.HwDiv, s.SoftDiv, s.Instrs, p.HwDiv, p.SoftDiv, p.Instrs)
	}
	if s.TimerCycles != p.TimerCycles {
		t.Errorf("%s: timer cycles diverge", label)
	}
	sa := s.RT.Gather(s.RT.ArrayByName("p", "a"))
	pa := p.RT.Gather(p.RT.ArrayByName("p", "a"))
	if !reflect.DeepEqual(sa, pa) {
		t.Errorf("%s: final array contents diverge", label)
	}
	if !bytes.Equal(st, pt) {
		t.Errorf("%s: traces diverge (serial %d bytes, parallel %d bytes)",
			label, len(st), len(pt))
	}
}

// TestParallelEngineBitIdentical is the tentpole acceptance test: the
// parallel engine must reproduce the serial engine bit-for-bit — stats,
// clocks, page counters, operation counts, array contents, and the full
// observability trace — across processor counts.
func TestParallelEngineBitIdentical(t *testing.T) {
	for _, np := range []int{1, 4, 16} {
		s, st := runEngine(t, engineSrc, np, EngineSerial, 0)
		p, pt := runEngine(t, engineSrc, np, EngineParallel, 4)
		checkIdentical(t, machine.Tiny(np).Name, s, p, st, pt)
		if s.EpochsCommitted != 0 || s.EpochsFallback != 0 {
			t.Errorf("np=%d: serial engine reported speculative epochs", np)
		}
		if np >= 4 && p.EpochsCommitted == 0 {
			t.Errorf("np=%d: parallel engine never committed an epoch (%d fallbacks) — speculation is dead code",
				np, p.EpochsFallback)
		}
	}
}

// TestParallelSingleWorkerIdentical pins the workers==1 path (epochs run
// through serialWindow) to the serial engine.
func TestParallelSingleWorkerIdentical(t *testing.T) {
	s, st := runEngine(t, engineSrc, 8, EngineSerial, 0)
	p, pt := runEngine(t, engineSrc, 8, EngineParallel, 1)
	checkIdentical(t, "workers=1", s, p, st, pt)
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		err  bool
	}{
		{"", EngineAuto, false},
		{"auto", EngineAuto, false},
		{"serial", EngineSerial, false},
		{"parallel", EngineParallel, false},
		{"turbo", EngineAuto, true},
	} {
		got, err := ParseEngine(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if EngineParallel.String() != "parallel" || EngineSerial.String() != "serial" ||
		EngineAuto.String() != "auto" {
		t.Error("Engine.String wrong")
	}
}

// TestQuantumBudgetErrorNamesFlag checks the runaway guard reports the
// limit and how to raise it, for both engines.
func TestQuantumBudgetErrorNamesFlag(t *testing.T) {
	img := compileSrc(t, engineSrc)
	for _, eng := range []Engine{EngineSerial, EngineParallel} {
		_, err := Run(img.Res, machine.Tiny(4), Options{
			Policy:    ospage.FirstTouch,
			Engine:    eng,
			Workers:   2,
			MaxQuanta: 8,
		})
		if err == nil || !strings.Contains(err.Error(), "quantum budget of 8") ||
			!strings.Contains(err.Error(), "-max-quanta") {
			t.Errorf("%v engine budget error = %v", eng, err)
		}
	}
}
