package exec

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
)

// Engine selects how doacross regions are executed on the host.
//
// Both engines produce bit-identical simulations — every simulated cycle,
// stat counter, and recorder event is the same; only host wall time
// differs. The serial engine interleaves all simulated processors on one
// goroutine; the parallel engine runs them on real cores in speculative
// epochs with serial fallback (see parallel.go and DESIGN.md
// "Concurrency model").
type Engine int

const (
	// EngineAuto picks parallel when both the simulated machine and the
	// host have more than one processor, serial otherwise. The DSM_ENGINE
	// environment variable (serial|parallel|auto) overrides Auto — but
	// never an explicit Options.Engine — so CI can force an engine across
	// an existing test suite.
	EngineAuto Engine = iota
	EngineSerial
	EngineParallel
)

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "serial":
		return EngineSerial, nil
	case "parallel":
		return EngineParallel, nil
	}
	return EngineAuto, fmt.Errorf("unknown engine %q (accepted: serial, parallel, auto)", s)
}

func (e Engine) String() string {
	switch e {
	case EngineSerial:
		return "serial"
	case EngineParallel:
		return "parallel"
	}
	return "auto"
}

// resolveEngine applies the DSM_ENGINE override and the auto rule.
func resolveEngine(e Engine, nprocs int) Engine {
	if e == EngineAuto {
		if env := os.Getenv("DSM_ENGINE"); env != "" {
			if pe, err := ParseEngine(env); err == nil {
				e = pe
			}
		}
	}
	if e == EngineAuto {
		if nprocs > 1 && runtime.GOMAXPROCS(0) > 1 {
			e = EngineParallel
		} else {
			e = EngineSerial
		}
	}
	return e
}

// resolveWorkers applies the DSM_WORKERS override to an unset
// Options.Workers. 0 means "draw from the hostpool budget per region".
func resolveWorkers(w int) int {
	if w <= 0 {
		if env := os.Getenv("DSM_WORKERS"); env != "" {
			if n, err := strconv.Atoi(env); err == nil && n > 0 {
				w = n
			}
		}
	}
	return w
}
