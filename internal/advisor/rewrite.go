// Directive rewriting: the advisor edits programs at the source level,
// exactly like the user would. stripDirectives removes every existing
// distribution decision (c$distribute, c$distribute_reshape,
// c$redistribute, and the affinity clauses of c$doacross lines) while
// preserving line numbers, so one analysis of the stripped program maps
// back onto the original text. apply then inserts a candidate's
// directives: one distribute line after the arrays' declarations and a
// synthesized affinity clause on each doacross.
package advisor

import (
	"fmt"
	"strings"

	"dsmdist/internal/fortran"
)

// stripAffinity removes an "affinity(...) = data(...)" clause from a
// directive line. The subscripts nest parentheses (data(b(i, 1))), so
// this scans with balance counting instead of a regular expression.
func stripAffinity(line string) string {
	lower := strings.ToLower(line)
	start := strings.Index(lower, "affinity")
	if start < 0 {
		return line
	}
	i := start + len("affinity")
	skip := func() {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
	}
	balanced := func() bool {
		if i >= len(line) || line[i] != '(' {
			return false
		}
		depth := 0
		for ; i < len(line); i++ {
			switch line[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					i++
					return true
				}
			}
		}
		return false
	}
	skip()
	if !balanced() {
		return line
	}
	skip()
	if i >= len(line) || line[i] != '=' {
		return line
	}
	i++
	skip()
	if !strings.HasPrefix(strings.ToLower(line[i:]), "data") {
		return line
	}
	i += len("data")
	skip()
	if !balanced() {
		return line
	}
	// Trim surrounding whitespace once, keeping a single separator.
	before := strings.TrimRight(line[:start], " \t")
	return before + " " + strings.TrimLeft(line[i:], " \t")
}

// splitLines splits keeping no trailing empty element.
func splitLines(src string) []string {
	lines := strings.Split(src, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// isDirective reports whether the line is the start of the named
// directive ("distribute" also matches "distribute_reshape" when asked).
func isDirective(line string, names ...string) bool {
	l := strings.ToLower(strings.TrimSpace(line))
	if !strings.HasPrefix(l, "c$") {
		return false
	}
	l = l[2:]
	for _, n := range names {
		if strings.HasPrefix(l, n) {
			return true
		}
	}
	return false
}

// continues reports whether the logical line continues onto the next
// physical line (ends with '&', ignoring a trailing comment).
func continues(line string) bool {
	if i := strings.Index(line, "!"); i >= 0 {
		line = line[:i]
	}
	return strings.HasSuffix(strings.TrimSpace(line), "&")
}

// stripDirectives removes every distribution decision from the source,
// replacing removed lines with plain comment lines so that line numbers
// are stable. It returns the stripped source.
func stripDirectives(src string) string {
	lines := splitLines(src)
	for i := 0; i < len(lines); i++ {
		if isDirective(lines[i], "distribute", "redistribute") {
			cont := continues(lines[i])
			lines[i] = "c"
			for cont && i+1 < len(lines) {
				i++
				cont = continues(lines[i])
				lines[i] = "c"
			}
			continue
		}
		if isDirective(lines[i], "doacross") {
			// The affinity clause may sit on the directive line or on a
			// continuation; strip it wherever it appears.
			j := i
			for {
				lines[j] = stripAffinity(lines[j])
				if !continues(lines[j]) || j+1 >= len(lines) {
					break
				}
				j++
			}
			i = j
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// apply renders the candidate into the stripped source: directives are
// inserted after the declaration of the distributed arrays of the program
// unit, and each nest with an affinity choice gets its clause appended to
// the doacross line. an must come from analyzing the stripped source.
func apply(stripped string, an *Analysis, cand *Candidate) (string, error) {
	lines := splitLines(stripped)
	if cand.Specs != nil && len(cand.Specs) > 0 {
		for ni, ac := range cand.affinity {
			if ni >= len(an.Nests) {
				continue
			}
			nest := an.Nests[ni]
			li := nest.Line - 1
			if li < 0 || li >= len(lines) || !isDirective(lines[li], "doacross") {
				return "", fmt.Errorf("advisor: doacross for nest at line %d not found in source", nest.Line)
			}
			// Append to the end of the logical directive line.
			for continues(lines[li]) && li+1 < len(lines) {
				li++
			}
			lines[li] = lines[li] + " " + ac.Clause(nest)
		}

		declLine, err := declLineFor(an, stripped)
		if err != nil {
			return "", err
		}
		name := "c$distribute"
		if cand.Reshape {
			name = "c$distribute_reshape"
		}
		directive := name + " " + cand.SpecText
		out := make([]string, 0, len(lines)+1)
		out = append(out, lines[:declLine]...)
		out = append(out, directive)
		out = append(out, lines[declLine:]...)
		lines = out
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// declLineFor finds the last declaration line among the advised arrays of
// the program unit (the directive must follow every array it names).
func declLineFor(an *Analysis, stripped string) (int, error) {
	f, err := fortran.Parse(an.Unit.SourceFile, stripped)
	if err != nil {
		return 0, err
	}
	names := map[string]bool{}
	for _, s := range an.Arrays {
		names[s.Name] = true
	}
	line := 0
	for _, u := range f.Units {
		if u.Name != an.Unit.Name {
			continue
		}
		for _, d := range u.Decls {
			td, ok := d.(*fortran.TypeDecl)
			if !ok {
				continue
			}
			for _, it := range td.Items {
				if names[it.Name] && it.Line > line {
					line = it.Line
				}
			}
		}
	}
	if line == 0 {
		return 0, fmt.Errorf("advisor: declarations of advised arrays not found in %s", an.Unit.SourceFile)
	}
	return line, nil
}

// DirectiveText renders the candidate's directives for human consumption:
// the distribute line plus each nest's doacross affinity clause.
func (c *Candidate) DirectiveText(an *Analysis) string {
	if c.Specs == nil || len(c.Specs) == 0 {
		return fmt.Sprintf("(no directives; run with -policy %s)", c.Policy)
	}
	var b strings.Builder
	name := "c$distribute"
	if c.Reshape {
		name = "c$distribute_reshape"
	}
	fmt.Fprintf(&b, "%s %s\n", name, c.SpecText)
	for ni, nest := range an.Nests {
		if ac := c.affinity[ni]; ac != nil {
			fmt.Fprintf(&b, "c$doacross (line %d): %s\n", nest.Line, ac.Clause(nest))
		}
	}
	return b.String()
}
