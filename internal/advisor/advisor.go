// Package advisor is the automatic data-distribution advisor: given a
// program in the Fortran subset whose doacross loops are not (or badly)
// distributed, it proposes the c$distribute / c$distribute_reshape /
// affinity directives of the paper (§3) automatically. Three stages:
//
//  1. Static affine analysis (analyze.go) extracts per-array access
//     footprints from the lowered IR of every doacross nest.
//  2. Candidate enumeration and an analytic cost model (candidates.go,
//     cost.go) score the legal distribution menu against the machine
//     model — remote-miss volume, node-bandwidth serialization, page
//     false sharing, TLB reach — optionally reweighed by a measured
//     dsmprof heat map (heat.go).
//  3. Search-and-verify (this file) rewrites the source per candidate
//     (rewrite.go), builds each through a shared compile cache, runs the
//     top-K candidates on the simulator in parallel, and ranks them by
//     measured cycles.
//
// The output is deterministic for a given program, machine and processor
// list, regardless of the host-side parallelism used for verification.
package advisor

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/experiments"
	"dsmdist/internal/fortran"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/sema"
)

// Options configure an advice run.
type Options struct {
	// Procs are the processor counts candidates are evaluated at.
	// Default {1, 4, 16}.
	Procs []int
	// Machine builds the machine model for a processor count.
	// Default machine.Scaled.
	Machine func(p int) *machine.Config
	// TopK is how many statically-ranked candidates are verified on the
	// simulator (0 = default 6, negative = all).
	TopK int
	// Par bounds the host-side worker pool for verification runs
	// (0 = GOMAXPROCS). It affects wall time only, never the report.
	Par int
	// Heat, when non-nil, is a measured dsmprof heat map used to reweigh
	// the cost model.
	Heat *obs.HeatMap
	// Verify, when non-nil, replaces the local build-and-run of one
	// verification point: it receives a candidate's full rewritten source
	// set, a processor count, and the candidate's page policy, and returns
	// the measured region-of-interest cycles. Simulation determinism makes
	// the report identical to a local verification.
	Verify func(sources map[string]string, p int, policy ospage.Policy) (int64, error)
	// VerifyBatch, when non-nil, replaces the whole verification fan-out
	// with one call receiving every point and returning the measured
	// region-of-interest cycles per point, in order. dsmadvise -remote
	// points this at a dsmd batch submission, so the top-K × P fan-out is
	// admitted atomically and served from the shared content-addressed
	// result cache in a single round trip. Takes precedence over Verify.
	VerifyBatch func(points []VerifyPoint) ([]int64, error)
}

// VerifyPoint is one point of the verification fan-out handed to
// Options.VerifyBatch.
type VerifyPoint struct {
	// Sources is the candidate's full rewritten source set.
	Sources map[string]string
	// Procs is the simulated processor count.
	Procs int
	// Policy is the candidate's page policy.
	Policy ospage.Policy
}

// Report is the ranked outcome of an advice run.
type Report struct {
	Unit    string `json:"unit"`
	File    string `json:"file"`
	Machine string `json:"machine"`
	Procs   []int  `json:"procs"`
	// Ranked lists every candidate, best first: verified candidates by
	// measured total cycles, then unverified ones by static cost.
	Ranked []*Candidate `json:"ranked"`
	// Directives is the winning directive text.
	Directives string `json:"directives"`
	// WinnerSource is the full rewritten program of the winner.
	WinnerSource string `json:"-"`

	an *Analysis
}

// Winner is the best candidate.
func (r *Report) Winner() *Candidate {
	if len(r.Ranked) == 0 {
		return nil
	}
	return r.Ranked[0]
}

// Advise analyzes the program in sources (exactly one file must hold the
// main program unit), enumerates candidate distributions, and verifies
// the best ones on the simulator.
func Advise(sources map[string]string, opts Options) (*Report, error) {
	if opts.Machine == nil {
		opts.Machine = machine.Scaled
	}
	if len(opts.Procs) == 0 {
		opts.Procs = []int{1, 4, 16}
	}
	topK := opts.TopK
	if topK == 0 {
		topK = 6
	}

	mainFile, err := findProgramFile(sources)
	if err != nil {
		return nil, err
	}
	stripped := stripDirectives(sources[mainFile])
	f, err := fortran.Parse(mainFile, stripped)
	if err != nil {
		return nil, fmt.Errorf("advisor: %w", err)
	}
	units, err := sema.AnalyzeFile(f)
	if err != nil {
		return nil, fmt.Errorf("advisor: %w", err)
	}
	var an *Analysis
	for _, u := range units {
		if u.IsProgram {
			an = Analyze(u)
			break
		}
	}
	if an == nil {
		return nil, fmt.Errorf("advisor: no program unit in %s", mainFile)
	}
	if len(an.Nests) == 0 {
		return nil, fmt.Errorf("advisor: %s has no doacross loops to advise on", an.Unit.Name)
	}

	cfg0 := opts.Machine(opts.Procs[0])
	cands := enumerate(an, cfg0.PageBytes)
	weights := heatWeights(an, opts.Heat)

	// Rewrite each candidate's program once, up front.
	for _, c := range cands {
		src, err := apply(stripped, an, c)
		if err != nil {
			return nil, err
		}
		c.Source = src
	}

	// Static ranking: summed model cost over the processor list.
	for _, c := range cands {
		for _, p := range opts.Procs {
			c.StaticCost += staticCost(an, c, opts.Machine(p), weights)
		}
	}
	order := make([]*Candidate, len(cands))
	copy(order, cands)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].StaticCost != order[j].StaticCost {
			return order[i].StaticCost < order[j].StaticCost
		}
		return order[i].ID < order[j].ID
	})
	if topK < 0 || topK > len(order) {
		topK = len(order)
	}

	// Verify the top K on the simulator: candidates × processor counts,
	// fanned out over the shared worker pool with one compile cache.
	verify := order[:topK]
	cache := core.NewBuildCache()
	type point struct {
		c  *Candidate
		pi int
	}
	var points []point
	for _, c := range verify {
		c.Cycles = make([]int64, len(opts.Procs))
		for pi := range opts.Procs {
			points = append(points, point{c, pi})
		}
	}
	srcsFor := func(c *Candidate) map[string]string {
		srcs := map[string]string{mainFile: c.Source}
		for name, s := range sources {
			if name != mainFile {
				srcs[name] = s
			}
		}
		return srcs
	}
	if opts.VerifyBatch != nil {
		vps := make([]VerifyPoint, len(points))
		for i, pt := range points {
			vps[i] = VerifyPoint{
				Sources: srcsFor(pt.c),
				Procs:   opts.Procs[pt.pi],
				Policy:  pt.c.Policy,
			}
		}
		cycles, err := opts.VerifyBatch(vps)
		if err != nil {
			return nil, fmt.Errorf("advisor: batch verification: %w", err)
		}
		if len(cycles) != len(points) {
			return nil, fmt.Errorf("advisor: batch verification returned %d results for %d points", len(cycles), len(points))
		}
		for i, pt := range points {
			pt.c.Cycles[pt.pi] = cycles[i]
		}
	} else {
		err = experiments.ForEach(opts.Par, len(points), func(i int) error {
			pt := points[i]
			p := opts.Procs[pt.pi]
			srcs := srcsFor(pt.c)
			if opts.Verify != nil {
				cyc, err := opts.Verify(srcs, p, pt.c.Policy)
				if err != nil {
					return fmt.Errorf("advisor: candidate %s P=%d: %w", pt.c.Label, p, err)
				}
				pt.c.Cycles[pt.pi] = cyc
				return nil
			}
			tc := core.New()
			tc.RuntimeChecks = false
			tc.Cache = cache
			img, err := tc.Build(srcs)
			if err != nil {
				return fmt.Errorf("advisor: candidate %s: %w", pt.c.Label, err)
			}
			res, err := core.Run(img, opts.Machine(p), core.RunOptions{Policy: pt.c.Policy})
			if err != nil {
				return fmt.Errorf("advisor: candidate %s P=%d: %w", pt.c.Label, p, err)
			}
			pt.c.Cycles[pt.pi] = measured(res)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, c := range verify {
		c.Verified = true
		for _, cyc := range c.Cycles {
			c.Total += cyc
		}
	}

	// Final ranking: verified by measured total, then the rest by model.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Verified != b.Verified {
			return a.Verified
		}
		if a.Verified {
			if a.Total != b.Total {
				return a.Total < b.Total
			}
			return a.ID < b.ID
		}
		if a.StaticCost != b.StaticCost {
			return a.StaticCost < b.StaticCost
		}
		return a.ID < b.ID
	})

	rep := &Report{
		Unit:    an.Unit.Name,
		File:    mainFile,
		Machine: cfg0.Name,
		Procs:   opts.Procs,
		Ranked:  order,
		an:      an,
	}
	if w := rep.Winner(); w != nil {
		rep.Directives = w.DirectiveText(an)
		rep.WinnerSource = w.Source
	}
	return rep, nil
}

// measured returns the region-of-interest cycles (dsm_timer section when
// present, total otherwise) — same rule as the experiment harness.
func measured(res *exec.Result) int64 {
	if res.TimerCycles > 0 {
		return res.TimerCycles
	}
	return res.Cycles
}

// findProgramFile locates the source holding the main program unit.
func findProgramFile(sources map[string]string) (string, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	found := ""
	for _, n := range names {
		f, err := fortran.Parse(n, sources[n])
		if err != nil {
			return "", fmt.Errorf("advisor: %w", err)
		}
		for _, u := range f.Units {
			if u.Kind == fortran.ProgramUnit {
				if found != "" {
					return "", fmt.Errorf("advisor: multiple program units (%s, %s)", found, n)
				}
				found = n
			}
		}
	}
	if found == "" {
		return "", fmt.Errorf("advisor: no program unit among the sources")
	}
	return found, nil
}

// WriteText renders the ranked report.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "dsmadvise: program %s (%s) on %s, procs %v\n\n",
		r.Unit, r.File, r.Machine, r.Procs)
	fmt.Fprintf(w, "%-4s %-20s %-12s", "rank", "candidate", "static")
	for _, p := range r.Procs {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintf(w, " %14s\n", "total")
	for i, c := range r.Ranked {
		fmt.Fprintf(w, "%-4d %-20s %-12.3g", i+1, c.Label, c.StaticCost)
		for pi := range r.Procs {
			if c.Verified {
				fmt.Fprintf(w, " %12d", c.Cycles[pi])
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		if c.Verified {
			fmt.Fprintf(w, " %14d\n", c.Total)
		} else {
			fmt.Fprintf(w, " %14s\n", "(model only)")
		}
	}
	if w2 := r.Winner(); w2 != nil {
		fmt.Fprintf(w, "\nwinning distribution (%s):\n%s", w2.Label, r.Directives)
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
