// Static affine analysis: the advisor's front half. It walks the lowered
// IR of a unit and extracts, for every doacross nest, the affine access
// footprint of each array reference — which loop variable indexes which
// array dimension, with what coefficient and stride — plus the loop trip
// counts needed to weigh nests against each other. This is the same
// "simple form a*i+c" subscript discipline the paper's §7 optimizations
// and the §3.4 affinity clause rely on, reused here as an analysis.
package advisor

import (
	"dsmdist/internal/ir"
)

// Subscript classifies one dimension's index expression of a reference.
type Subscript struct {
	// Var is the loop variable when the subscript is affine a*Var+c;
	// nil for a constant or unanalyzable subscript.
	Var *ir.Sym
	A   int64 // coefficient (one-based index = A*Var + C)
	C   int64
	// Affine reports whether the subscript matched a*v+c at all.
	Affine bool
}

// Loop is one counted loop level enclosing a reference.
type Loop struct {
	Var    *ir.Sym
	Lo, Hi int64 // inclusive bounds; 1..Trip when bounds are unknown
	Trip   int64
}

// Ref is one array reference inside a doacross nest.
type Ref struct {
	Sym   *ir.Sym
	Write bool
	Subs  []Subscript
	// Loops are the loop levels enclosing the reference inside the nest,
	// outermost first; the first Nest entries are the parallel loops.
	Loops []Loop
	// Iter is the number of executions per program run: the product of
	// all enclosing trip counts, inside and outside the nest.
	Iter int64
}

// Nest is one doacross parallel nest of the unit.
type Nest struct {
	Par  *ir.Par
	Line int
	// ParLoops are the parallel loop levels, outermost first
	// (len == Par.Nest).
	ParLoops []Loop
	// Outer is the product of the trip counts of serial loops enclosing
	// the whole nest (how many times the nest is dispatched).
	Outer int64
	Refs  []*Ref
	// Weight is the total reference traffic of the nest (sum of
	// Ref.Iter), used to pick the dominant nest per array.
	Weight int64
}

// Analysis is the static summary of one unit.
type Analysis struct {
	Unit  *ir.Unit
	Nests []*Nest
	// Arrays are the distribution candidates: local arrays with constant
	// extents that are referenced inside at least one nest, in symbol
	// order.
	Arrays []*ir.Sym
	// Extents caches ConstDims per array symbol.
	Extents map[*ir.Sym][]int64
	// SerialWrite marks arrays written outside every parallel nest (the
	// serial-initialization pattern that makes first-touch place every
	// page on node 0, §8.2).
	SerialWrite map[*ir.Sym]bool
}

// unknownTrip stands in for loop bounds the analysis cannot fold; it only
// affects relative weights, not correctness.
const unknownTrip = 16

// Analyze summarizes the doacross nests of a lowered unit.
func Analyze(unit *ir.Unit) *Analysis {
	an := &Analysis{
		Unit:        unit,
		Extents:     map[*ir.Sym][]int64{},
		SerialWrite: map[*ir.Sym]bool{},
	}
	w := &walker{an: an}
	w.stmts(unit.Body)

	seen := map[*ir.Sym]bool{}
	for _, nest := range an.Nests {
		for _, r := range nest.Refs {
			nest.Weight += r.Iter
			seen[r.Sym] = true
		}
	}
	for _, s := range unit.Syms {
		if s.Kind != ir.Array || !seen[s] {
			continue
		}
		ext, ok := s.ConstDims()
		if !ok {
			continue // assumed-size or variable extents: cannot advise
		}
		an.Arrays = append(an.Arrays, s)
		an.Extents[s] = ext
	}
	return an
}

// walker carries the loop environment during the statement walk.
type walker struct {
	an   *Analysis
	env  []Loop // loops enclosing the current statement, outermost first
	nest *Nest  // non-nil inside a doacross nest
	// nestDepth is len(env) at the nest's outer loop, so Ref.Loops can be
	// sliced out of env.
	nestDepth int
}

func (w *walker) stmts(ss []ir.Stmt) {
	for _, s := range ss {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ir.Stmt) {
	switch x := s.(type) {
	case *ir.Do:
		lo, hi, trip := loopBounds(x)
		loop := Loop{Var: x.Var, Lo: lo, Hi: hi, Trip: trip}
		opened := false
		if x.Par != nil && w.nest == nil {
			nest := &Nest{Par: x.Par, Line: x.Par.Line, Outer: w.outerTrip()}
			w.an.Nests = append(w.an.Nests, nest)
			w.nest = nest
			w.nestDepth = len(w.env)
			opened = true
		}
		w.env = append(w.env, loop)
		if w.nest != nil && len(w.nest.ParLoops) < w.nest.Par.Nest &&
			len(w.env)-w.nestDepth <= w.nest.Par.Nest {
			w.nest.ParLoops = append(w.nest.ParLoops, loop)
		}
		w.stmts(x.Body)
		w.env = w.env[:len(w.env)-1]
		if opened {
			w.nest = nil
		}
	case *ir.If:
		w.stmts(x.Then)
		w.stmts(x.Else)
	case *ir.Assign:
		w.expr(x.Lhs, true)
		w.expr(x.Rhs, false)
	case *ir.CallStmt:
		for _, a := range x.Args {
			w.expr(a, false)
		}
	case *ir.Region:
		w.stmts(x.Body)
	}
}

// expr records array references; write applies to the top-level node only
// (subscripts and RHS subtrees are reads).
func (w *walker) expr(e ir.Expr, write bool) {
	if e == nil {
		return
	}
	if ar, ok := e.(*ir.ArrayRef); ok {
		w.ref(ar, write)
		for _, ix := range ar.Idx {
			w.expr(ix, false)
		}
		return
	}
	ir.WalkExpr(e, func(sub ir.Expr) bool {
		if ar, ok := sub.(*ir.ArrayRef); ok && sub != e {
			w.ref(ar, false)
		}
		return true
	})
}

func (w *walker) ref(ar *ir.ArrayRef, write bool) {
	if w.nest == nil {
		if write {
			w.an.SerialWrite[ar.Sym] = true
		}
		return
	}
	r := &Ref{Sym: ar.Sym, Write: write, Iter: w.nest.Outer}
	r.Loops = append(r.Loops, w.env[w.nestDepth:]...)
	for _, l := range r.Loops {
		r.Iter *= l.Trip
	}
	r.Subs = make([]Subscript, len(ar.Idx))
	for d, ix := range ar.Idx {
		if af, ok := ir.MatchAffine(ix); ok {
			r.Subs[d] = Subscript{Var: af.Var, A: af.A, C: af.C, Affine: true}
		}
	}
	w.nest.Refs = append(w.nest.Refs, r)
}

// outerTrip is the product of the current (serial) loop trips.
func (w *walker) outerTrip() int64 {
	t := int64(1)
	for _, l := range w.env {
		t *= l.Trip
	}
	return t
}

// loopBounds folds a loop's bounds to constants, defaulting unknowns.
func loopBounds(d *ir.Do) (lo, hi, trip int64) {
	lo, lok := evalInt(d.Lo)
	hi, hok := evalInt(d.Hi)
	step := int64(1)
	if d.Step != nil {
		if s, ok := evalInt(d.Step); ok && s != 0 {
			step = s
		}
	}
	if !lok || !hok {
		return 1, unknownTrip, unknownTrip
	}
	if step < 0 {
		lo, hi, step = hi, lo, -step
	}
	trip = (hi-lo)/step + 1
	if trip < 1 {
		trip = 1
	}
	return lo, hi, trip
}

// evalInt folds an integer expression built from constants (sema folds
// parameter constants, so loop bounds like n-1 are usually already
// ConstInt; this handles leftover Bin/Un/Intrinsic shapes).
func evalInt(e ir.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ir.ConstInt:
		return x.V, true
	case *ir.Un:
		if x.Not {
			return 0, false
		}
		v, ok := evalInt(x.X)
		return -v, ok
	case *ir.Bin:
		l, lok := evalInt(x.L)
		r, rok := evalInt(x.R)
		if !lok || !rok {
			return 0, false
		}
		switch x.Op {
		case ir.Add:
			return l + r, true
		case ir.Sub:
			return l - r, true
		case ir.Mul:
			return l * r, true
		case ir.Div:
			if r != 0 {
				return l / r, true
			}
		case ir.Mod:
			if r != 0 {
				return l % r, true
			}
		}
	}
	return 0, false
}

// InnerStride returns the element stride of the reference with respect to
// the innermost enclosing loop whose variable appears in a subscript, and
// the trip count of that loop (0, 1 when no loop variable appears). The
// extents are the array's constant dimensions.
func (r *Ref) InnerStride(ext []int64) (stride, trip int64) {
	for l := len(r.Loops) - 1; l >= 0; l-- {
		v := r.Loops[l].Var
		s := int64(0)
		dimStride := int64(1)
		for d, sub := range r.Subs {
			if sub.Affine && sub.Var == v {
				s += sub.A * dimStride
			}
			if d < len(ext) {
				dimStride *= ext[d]
			}
		}
		if s != 0 {
			return s, r.Loops[l].Trip
		}
	}
	return 0, 1
}
