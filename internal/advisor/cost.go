// The analytic cost model: scores a candidate distribution against a
// machine.Config without running it. It estimates, per nest and per
// reference, the cache-miss volume (from strides and per-processor
// footprints), splits it into local and remote misses by sampling the
// iteration space deterministically and asking the dist-package owner
// transforms where each element lives, and adds the three second-order
// terms the paper's evaluation turns on: node-memory bandwidth
// serialization when one node serves everything (§8.2 first-touch after
// serial initialization), page-granularity false sharing at portion
// boundaries of regular distributions (§4.2 vs §4.3), and TLB reach when
// portions are page-sparse. Measured heat maps, when supplied, reweigh
// arrays by observed traffic.
package advisor

import (
	"dsmdist/internal/dist"
	"dsmdist/internal/ir"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

// samples per loop level when sampling the iteration space.
const (
	parSamples    = 5
	serialSamples = 3
)

// arrayGeom is the per-candidate geometry of one distributed array.
type arrayGeom struct {
	ext   []int64
	grid  dist.Grid
	maps  []dist.DimMap
	bytes int64
}

// costModel evaluates one candidate at one processor count.
type costModel struct {
	an      *Analysis
	cand    *Candidate
	cfg     *machine.Config
	weights map[string]float64
	geom    map[*ir.Sym]*arrayGeom
	nnodes  int
}

// staticCost returns the model's estimated execution cycles for the
// candidate at the machine's processor count. Only relative order between
// candidates matters; the verifier measures real cycles afterwards.
func staticCost(an *Analysis, cand *Candidate, cfg *machine.Config, weights map[string]float64) float64 {
	m := &costModel{an: an, cand: cand, cfg: cfg, weights: weights,
		geom: map[*ir.Sym]*arrayGeom{}, nnodes: cfg.NNodes()}
	for _, s := range an.Arrays {
		ext := an.Extents[s]
		g := &arrayGeom{ext: ext, bytes: 8}
		for _, e := range ext {
			g.bytes *= e
		}
		if sp, ok := cand.Specs[s.Name]; ok && sp.Distributed() {
			grid, err := dist.NewGrid(sp, cfg.NProcs)
			if err != nil {
				continue
			}
			iext := make([]int, len(ext))
			for i, e := range ext {
				iext[i] = int(e)
			}
			maps, err := grid.Maps(iext)
			if err != nil {
				continue
			}
			g.grid, g.maps = grid, maps
		}
		m.geom[s] = g
	}

	total := 0.0
	nodeServe := make([]float64, m.nnodes)
	for ni, nest := range an.Nests {
		total += m.nestCost(ni, nest, nodeServe)
	}
	// Bandwidth serialization: the excess a hot node serves beyond its
	// balanced share stalls everyone behind it (§8.2).
	maxServe, sumServe := 0.0, 0.0
	for _, s := range nodeServe {
		sumServe += s
		if s > maxServe {
			maxServe = s
		}
	}
	total += maxServe - sumServe/float64(m.nnodes)
	return total
}

// nestCost sums the per-reference miss costs of one nest, divided by the
// processor count (the nest runs in parallel), and feeds nodeServe.
func (m *costModel) nestCost(ni int, nest *Nest, nodeServe []float64) float64 {
	p := float64(m.cfg.NProcs)
	lineElems := int64(m.cfg.L2LineSize / 8)
	cost := 0.0
	for _, r := range nest.Refs {
		g := m.geom[r.Sym]
		if g == nil {
			continue
		}
		accesses := float64(r.Iter)
		// Miss volume from the inner stride.
		stride, innerTrip := r.InnerStride(g.ext)
		missFrac := 1.0
		switch {
		case stride == 0:
			missFrac = 1 / float64(max64(1, innerTrip))
		case abs64(stride) < lineElems:
			missFrac = float64(abs64(stride)) / float64(lineElems)
		}
		// When the per-processor share fits comfortably in L2, repeat
		// sweeps hit in cache: charge only the first dispatch.
		perProc := g.bytes / int64(m.cfg.NProcs)
		if m.cand.Reshape {
			perProc = m.portionBytes(g)
		}
		if perProc <= int64(m.cfg.L2Bytes/2) && nest.Outer > 1 {
			missFrac /= float64(nest.Outer)
		}
		misses := accesses * missFrac

		st := m.sampleRef(ni, nest, r, g)

		avgRemote := float64(m.cfg.RemoteBaseCyc+m.cfg.RemoteMaxCyc) / 2
		perMiss := (1-st.remoteFrac)*float64(m.cfg.LocalMemCyc) + st.remoteFrac*avgRemote
		refCost := misses * perMiss

		// Page-granularity false sharing: writes to regular pages whose
		// owner differs from the element owner ping coherence.
		if r.Write && !m.cand.Reshape && g.maps != nil {
			refCost += misses * st.splitFrac * float64(m.cfg.CoherenceCyc) * 2
		}
		// TLB reach: page-sparse strides over a footprint beyond the TLB.
		strideBytes := abs64(stride) * 8
		if perProc > int64(m.cfg.TLBEntries*m.cfg.PageBytes) && strideBytes > 0 {
			pageFrac := float64(strideBytes) / float64(m.cfg.PageBytes)
			if pageFrac > 1 {
				pageFrac = 1
			}
			refCost += accesses * missFrac * pageFrac * float64(m.cfg.TLBMissCyc)
		}
		// Residual reshaped addressing cost after the §7 optimizations.
		if m.cand.Reshape && g.maps != nil {
			refCost += accesses * 0.5
		}

		w := 1.0
		if m.weights != nil {
			if ww, ok := m.weights[r.Sym.Name]; ok {
				w = ww
			}
		}
		cost += w * refCost / p
		for n := range nodeServe {
			nodeServe[n] += w * misses * st.servedFrac[n] * float64(m.cfg.MemServiceCyc)
		}
	}
	return cost
}

// refStats are the sampled locality fractions of one reference.
type refStats struct {
	remoteFrac float64
	splitFrac  float64 // element owner != page owner (regular boundary pages)
	servedFrac []float64
}

// sampleRef walks a deterministic lattice over the reference's loop
// environment and classifies each sampled access.
func (m *costModel) sampleRef(ni int, nest *Nest, r *Ref, g *arrayGeom) refStats {
	st := refStats{servedFrac: make([]float64, m.nnodes)}
	vals := make([]int64, len(r.Loops))
	var samples, remote, split float64
	served := make([]float64, m.nnodes)

	var walk func(l int)
	walk = func(l int) {
		if l == len(r.Loops) {
			samples++
			proc := m.execProc(ni, nest, r.Loops, vals)
			owner := m.ownerNode(r, g, vals)
			node := m.cfg.NodeOf(proc)
			served[owner]++
			if owner != node {
				remote++
			}
			if !m.cand.Reshape && g.maps != nil && m.pageSplit(r, g, vals) {
				split++
			}
			return
		}
		n := serialSamples
		if l < len(nest.ParLoops) {
			n = parSamples
		}
		lp := r.Loops[l]
		if int64(n) > lp.Trip {
			n = int(lp.Trip)
		}
		for t := 0; t < n; t++ {
			v := lp.Lo
			if n > 1 {
				v = lp.Lo + (lp.Hi-lp.Lo)*int64(t)/int64(n-1)
			}
			vals[l] = v
			walk(l + 1)
		}
	}
	walk(0)

	if samples > 0 {
		st.remoteFrac = remote / samples
		st.splitFrac = split / samples
		for n := range served {
			st.servedFrac[n] = served[n] / samples
		}
	}
	return st
}

// execProc returns the processor executing the sampled iteration.
func (m *costModel) execProc(ni int, nest *Nest, loops []Loop, vals []int64) int {
	if ac := m.cand.affinity[ni]; ac != nil {
		// Affinity scheduling: the iteration runs where the affinity
		// element lives (§3.4, Figure 2).
		ag := m.geom[ac.Array]
		if ag != nil && ag.maps != nil {
			idx := make([]int, len(ac.Subs))
			for d, l := range ac.Subs {
				if l >= 0 {
					idx[d] = clamp(int(vals[l]-1), 0, int(ag.ext[d])-1)
				}
			}
			return ag.grid.OwnerLinear(ag.maps, idx)
		}
	}
	// Simple scheduling: block partition of the parallel loops over a
	// near-square processor grid (the nest-grid factorization).
	k := len(nest.ParLoops)
	sp := dist.Spec{Dims: make([]dist.Dim, k)}
	for i := range sp.Dims {
		sp.Dims[i] = dist.Dim{Kind: dist.Block}
	}
	grid, err := dist.NewGrid(sp, m.cfg.NProcs)
	if err != nil {
		return 0
	}
	proc, mul := 0, 1
	for l := 0; l < k && l < len(loops); l++ {
		pl := grid.DimProcs[l]
		lp := loops[l]
		c := int((vals[l] - lp.Lo) * int64(pl) / max64(1, lp.Trip))
		proc += clamp(c, 0, pl-1) * mul
		mul *= pl
	}
	return proc
}

// elemIndex evaluates the reference's zero-based element coordinates at
// the sampled loop values.
func (m *costModel) elemIndex(r *Ref, g *arrayGeom, vals []int64) []int {
	idx := make([]int, len(g.ext))
	for d := range g.ext {
		var e int64
		if d < len(r.Subs) && r.Subs[d].Affine {
			sub := r.Subs[d]
			e = sub.C - 1
			if sub.Var != nil {
				v := int64(0)
				found := false
				for l, lp := range r.Loops {
					if lp.Var == sub.Var {
						v, found = vals[l], true
						break
					}
				}
				if !found {
					v = (g.ext[d] + 1) / 2
				}
				e = sub.A*v + sub.C - 1
			}
		} else {
			e = g.ext[d] / 2
		}
		idx[d] = clamp(int(e), 0, int(g.ext[d])-1)
	}
	return idx
}

// ownerNode returns the home node of the sampled element under the
// candidate.
func (m *costModel) ownerNode(r *Ref, g *arrayGeom, vals []int64) int {
	idx := m.elemIndex(r, g, vals)
	if g.maps != nil {
		if m.cand.Reshape {
			return m.cfg.NodeOf(g.grid.OwnerLinear(g.maps, idx))
		}
		// Regular: page granularity; the page's last element decides
		// (ascending-processor placement, last requester wins, §4.2).
		return m.cfg.NodeOf(g.grid.OwnerLinear(g.maps, m.pageAnchor(g, idx)))
	}
	// Plain candidates: page policy.
	page := m.linear(g, idx) * 8 / int64(m.cfg.PageBytes)
	if m.cand.Policy == ospage.RoundRobin {
		return int(page % int64(m.nnodes))
	}
	// First touch: serial initialization lands everything on node 0;
	// parallel initialization approximates the aligned block partition.
	if m.an.SerialWrite[r.Sym] {
		return 0
	}
	al := alignments(m.an)[r.Sym]
	if al == nil {
		return 0
	}
	sp := specFor(al, g.ext, dist.Block, false, m.cfg.PageBytes)
	grid, err := dist.NewGrid(sp, m.cfg.NProcs)
	if err != nil {
		return 0
	}
	iext := make([]int, len(g.ext))
	for i, e := range g.ext {
		iext[i] = int(e)
	}
	maps, err := grid.Maps(iext)
	if err != nil {
		return 0
	}
	return m.cfg.NodeOf(grid.OwnerLinear(maps, m.pageAnchorIn(g, maps, idx)))
}

// pageSplit reports whether the sampled element's owner differs from its
// page's owner — a portion-boundary page shared by two processors.
func (m *costModel) pageSplit(r *Ref, g *arrayGeom, vals []int64) bool {
	idx := m.elemIndex(r, g, vals)
	return g.grid.OwnerLinear(g.maps, idx) != g.grid.OwnerLinear(g.maps, m.pageAnchor(g, idx))
}

// pageAnchor returns the coordinates of the last element of the page
// containing idx (the element whose owner the OS placement keeps).
func (m *costModel) pageAnchor(g *arrayGeom, idx []int) []int {
	return m.pageAnchorIn(g, g.maps, idx)
}

func (m *costModel) pageAnchorIn(g *arrayGeom, maps []dist.DimMap, idx []int) []int {
	lin := m.linear(g, idx)
	pageElems := int64(m.cfg.PageBytes / 8)
	last := (lin/pageElems+1)*pageElems - 1
	total := int64(1)
	for _, e := range g.ext {
		total *= e
	}
	if last >= total {
		last = total - 1
	}
	out := make([]int, len(g.ext))
	for d, e := range g.ext {
		out[d] = int(last % e)
		last /= e
	}
	return out
}

// linear converts zero-based coordinates to the column-major element
// offset.
func (m *costModel) linear(g *arrayGeom, idx []int) int64 {
	lin, mul := int64(0), int64(1)
	for d, e := range g.ext {
		lin += int64(idx[d]) * mul
		mul *= e
	}
	return lin
}

// portionBytes is the per-processor portion size of a reshaped array.
func (m *costModel) portionBytes(g *arrayGeom) int64 {
	if g.maps == nil {
		return g.bytes / int64(m.cfg.NProcs)
	}
	b := int64(8)
	for _, dm := range g.maps {
		b *= int64(dm.MaxPortionLen())
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
