package advisor

import (
	"strings"
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/fortran"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/sema"
	"dsmdist/internal/workloads"
	"dsmdist/internal/xform"
)

// analyzeSrc strips and analyzes a program, as Advise does.
func analyzeSrc(t *testing.T, src string) (*Analysis, string) {
	t.Helper()
	stripped := stripDirectives(src)
	f, err := fortran.Parse("main.f", stripped)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	units, err := sema.AnalyzeFile(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	for _, u := range units {
		if u.IsProgram {
			return Analyze(u), stripped
		}
	}
	t.Fatal("no program unit")
	return nil, ""
}

func candidateByLabel(t *testing.T, cands []*Candidate, label string) *Candidate {
	t.Helper()
	for _, c := range cands {
		if c.Label == label {
			return c
		}
	}
	t.Fatalf("candidate %q not found", label)
	return nil
}

// TestInferTranspose checks that the static analysis recovers the
// paper's §8.2 distribution for the transpose: a(*, block), b(block, *).
func TestInferTranspose(t *testing.T) {
	an, _ := analyzeSrc(t, workloads.Transpose(64, 1, workloads.Plain))
	if len(an.Nests) != 1 {
		t.Fatalf("nests = %d, want 1", len(an.Nests))
	}
	if !an.SerialWrite[an.Arrays[0]] || !an.SerialWrite[an.Arrays[1]] {
		t.Errorf("transpose initialization should be recognized as serial writes")
	}
	cands := enumerate(an, machine.Scaled(16).PageBytes)
	reg := candidateByLabel(t, cands, "regular-block")
	if reg.SpecText != "a(*, block), b(block, *)" {
		t.Errorf("regular-block spec = %q, want a(*, block), b(block, *)", reg.SpecText)
	}
	ac := reg.affinity[0]
	if ac == nil {
		t.Fatal("no affinity synthesized for the transpose nest")
	}
	// The write target a is preferred; affinity(i) = data(a(1, i)) keys
	// the same block partition of i as the paper's data(b(i, 1)).
	if got := ac.Clause(an.Nests[0]); got != "affinity(i) = data(a(1, i))" {
		t.Errorf("affinity clause = %q", got)
	}
}

// TestInferConvolution checks both paper variants of §8.3: one-level
// (*, block) and two-level (block, block) with the nest clause.
func TestInferConvolution(t *testing.T) {
	an, _ := analyzeSrc(t, workloads.Convolution(32, 1, 1, workloads.Plain))
	cands := enumerate(an, machine.Scaled(16).PageBytes)
	reg := candidateByLabel(t, cands, "regular-block")
	if reg.SpecText != "a(*, block), b(*, block)" {
		t.Errorf("1-level spec = %q, want a(*, block), b(*, block)", reg.SpecText)
	}
	var timed *Nest
	for ni, nest := range an.Nests {
		if got := reg.affinity[ni]; got != nil {
			timed = nest
			if cl := got.Clause(nest); cl != "affinity(j) = data(a(1, j))" {
				t.Errorf("1-level affinity = %q, want affinity(j) = data(a(1, j))", cl)
			}
		}
	}
	if timed == nil {
		t.Fatal("no affinity on the 1-level stencil nest")
	}

	an2, _ := analyzeSrc(t, workloads.Convolution(32, 1, 2, workloads.Plain))
	cands2 := enumerate(an2, machine.Scaled(16).PageBytes)
	reg2 := candidateByLabel(t, cands2, "regular-block")
	if reg2.SpecText != "a(block, block), b(block, block)" {
		t.Errorf("2-level spec = %q, want a(block, block), b(block, block)", reg2.SpecText)
	}
	for ni, nest := range an2.Nests {
		if ac := reg2.affinity[ni]; ac != nil {
			if cl := ac.Clause(nest); cl != "affinity(j, i) = data(a(i, j))" {
				t.Errorf("2-level affinity = %q, want affinity(j, i) = data(a(i, j))", cl)
			}
		}
	}
}

// TestInferLU checks the 4-D NAS-LU distribution (*, block, block, *).
func TestInferLU(t *testing.T) {
	an, _ := analyzeSrc(t, workloads.LU(8, 1, workloads.Plain))
	cands := enumerate(an, machine.Scaled(16).PageBytes)
	reg := candidateByLabel(t, cands, "regular-block")
	// Arrays are listed in symbol-table (alphabetical) order; the
	// directive is equivalent to the paper's "u(...), rsd(...)".
	want := "rsd(*, block, block, *), u(*, block, block, *)"
	if reg.SpecText != want {
		t.Errorf("LU spec = %q, want %q", reg.SpecText, want)
	}
	if an.SerialWrite[an.Arrays[0]] {
		t.Errorf("LU initializes in parallel; u must not be marked serially written")
	}
}

// TestRewriteCandidatesCompile applies every candidate of the transpose
// and checks the rewritten program still parses, analyzes and builds.
func TestRewriteCandidatesCompile(t *testing.T) {
	src := workloads.Transpose(32, 1, workloads.Reshaped) // existing directives must be replaced
	an, stripped := analyzeSrc(t, src)
	cands := enumerate(an, machine.Scaled(4).PageBytes)
	for _, c := range cands {
		out, err := apply(stripped, an, c)
		if err != nil {
			t.Fatalf("%s: apply: %v", c.Label, err)
		}
		if c.Specs != nil {
			if !strings.Contains(out, "c$distribute") {
				t.Fatalf("%s: no distribute directive in rewritten source", c.Label)
			}
			if !strings.Contains(out, "affinity(") {
				t.Fatalf("%s: no affinity clause in rewritten source", c.Label)
			}
		} else if strings.Contains(out, "c$distribute") {
			t.Fatalf("%s: plain candidate still carries a distribute directive", c.Label)
		}
		tc := core.NewAt(xform.O3())
		tc.RuntimeChecks = false
		if _, err := tc.Build(map[string]string{"main.f": out}); err != nil {
			t.Fatalf("%s: rewritten source does not build: %v\n%s", c.Label, err, out)
		}
	}
}

// runHandVariant builds and runs one of the paper's hand-directed
// variants, returning timed-section cycles.
func runHandVariant(t *testing.T, cache *core.BuildCache, src string, policy ospage.Policy, p int) int64 {
	t.Helper()
	tc := core.New()
	tc.RuntimeChecks = false
	tc.Cache = cache
	img, err := tc.Build(map[string]string{"bench.f": src})
	if err != nil {
		t.Fatalf("hand variant build: %v", err)
	}
	res, err := core.Run(img, machine.Scaled(p), core.RunOptions{Policy: policy})
	if err != nil {
		t.Fatalf("hand variant run: %v", err)
	}
	return measured(res)
}

// checkWithinHandBest runs the acceptance criterion: the advisor's
// winner must be within tol of the best hand-directed variant's cycles
// at a minimum number of processor counts.
func checkWithinHandBest(t *testing.T, gen func(workloads.Variant) string, rep *Report, procs []int, tol float64, minOK int) {
	t.Helper()
	w := rep.Winner()
	if w == nil || !w.Verified {
		t.Fatalf("winner missing or unverified")
	}
	hand := []struct {
		v      workloads.Variant
		policy ospage.Policy
	}{
		{workloads.Plain, ospage.FirstTouch},
		{workloads.Plain, ospage.RoundRobin},
		{workloads.Regular, ospage.FirstTouch},
		{workloads.Reshaped, ospage.FirstTouch},
	}
	cache := core.NewBuildCache()
	ok := 0
	for pi, p := range procs {
		best := int64(0)
		for _, h := range hand {
			cyc := runHandVariant(t, cache, gen(h.v), h.policy, p)
			if best == 0 || cyc < best {
				best = cyc
			}
		}
		got := w.Cycles[pi]
		t.Logf("P=%d: winner %s %d cycles, hand best %d (ratio %.3f)",
			p, w.Label, got, best, float64(got)/float64(best))
		if float64(got) <= float64(best)*(1+tol) {
			ok++
		}
	}
	if ok < minOK {
		t.Errorf("winner within %.0f%% of hand best at %d of %d processor counts, want >= %d",
			tol*100, ok, len(procs), minOK)
	}
}

// TestAdviseTransposeQuick is the acceptance test on the §8.2 transpose
// at quick scale: the advisor must land within 10%% of the best
// hand-directed variant at two or more processor counts.
func TestAdviseTransposeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator acceptance run")
	}
	procs := []int{4, 16}
	gen := func(v workloads.Variant) string { return workloads.Transpose(256, 1, v) }
	rep, err := Advise(map[string]string{"main.f": gen(workloads.Plain)},
		Options{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	checkWithinHandBest(t, gen, rep, procs, 0.10, 2)
	if !strings.Contains(rep.Directives, "block") {
		t.Errorf("winning directives carry no block distribution:\n%s", rep.Directives)
	}
}

// TestAdviseConvolutionQuick is the acceptance test on the §8.3 stencil.
func TestAdviseConvolutionQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator acceptance run")
	}
	procs := []int{4, 16}
	gen := func(v workloads.Variant) string { return workloads.Convolution(96, 1, 1, v) }
	rep, err := Advise(map[string]string{"main.f": gen(workloads.Plain)},
		Options{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	checkWithinHandBest(t, gen, rep, procs, 0.10, 2)
}

// TestAdviseDeterministicUnderParallelism: the ranked report must be
// bit-identical whether verification runs serially or on 8 workers.
func TestAdviseDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator run")
	}
	gen := workloads.Transpose(64, 1, workloads.Plain)
	var texts [2]string
	for i, par := range []int{1, 8} {
		rep, err := Advise(map[string]string{"main.f": gen},
			Options{Procs: []int{1, 4}, Par: par})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rep.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		texts[i] = b.String()
	}
	if texts[0] != texts[1] {
		t.Errorf("report differs between par=1 and par=8:\n--- par=1\n%s\n--- par=8\n%s", texts[0], texts[1])
	}
}

// heatMapFor fakes a measured profile: array a hot, array b cold.
func heatMapFor(an *Analysis, hotA, coldB int64) *obs.HeatMap {
	return &obs.HeatMap{Machine: "test", Arrays: []obs.ArrayHeat{
		{Name: an.Unit.Name + ".a", Local: hotA, Remote: hotA},
		{Name: an.Unit.Name + ".b", Local: coldB},
	}}
}

// TestAdviseHeatWeights: a heat map reweighs arrays without breaking the
// pipeline, and unknown arrays are ignored.
func TestAdviseHeatWeights(t *testing.T) {
	an, _ := analyzeSrc(t, workloads.Transpose(32, 1, workloads.Plain))
	h := heatMapFor(an, 1000, 50)
	w := heatWeights(an, h)
	if w == nil {
		t.Fatal("no weights from heat map")
	}
	if w["a"] <= w["b"] {
		t.Errorf("hot array a should outweigh b: %v", w)
	}
}
