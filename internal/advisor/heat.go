// Measured feedback: when the user supplies a dsmprof -heat-json profile
// (obs.HeatMap), the advisor reweighs each array's contribution to the
// static cost by its observed miss traffic. Arrays the profile shows to
// be hot dominate the model; arrays the static weights overestimate are
// damped. The schema is pinned by internal/obs's golden-file test.
package advisor

import (
	"strings"

	"dsmdist/internal/obs"
)

// heatWeights converts a measured heat map into per-array multipliers,
// normalized so the mean weight over matched arrays is 1. Heat-map names
// are "unit.array"; matching is by the suffix after the dot so profiles
// taken from any build of the same program apply.
func heatWeights(an *Analysis, h *obs.HeatMap) map[string]float64 {
	if h == nil {
		return nil
	}
	raw := map[string]float64{}
	var sum float64
	for _, s := range an.Arrays {
		ah := findHeat(h, an.Unit.Name, s.Name)
		if ah == nil {
			continue
		}
		raw[s.Name] = float64(ah.Local + ah.Remote + 1)
		sum += raw[s.Name]
	}
	if len(raw) == 0 {
		return nil
	}
	mean := sum / float64(len(raw))
	out := map[string]float64{}
	for name, v := range raw {
		out[name] = v / mean
	}
	return out
}

// findHeat locates an array's heat entry by exact "unit.name" or by the
// ".name" suffix.
func findHeat(h *obs.HeatMap, unit, name string) *obs.ArrayHeat {
	if ah := h.Array(unit + "." + name); ah != nil {
		return ah
	}
	for i := range h.Arrays {
		if strings.HasSuffix(h.Arrays[i].Name, "."+name) {
			return &h.Arrays[i]
		}
	}
	return nil
}
