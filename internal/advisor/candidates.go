// Candidate enumeration: from the affine footprints, infer how each array
// aligns with the parallel loops (which array dimension is indexed by
// which parallel loop variable), then enumerate the legal distribution
// menu of §3.2 — block / cyclic / cyclic(k) on the aligned dimensions,
// regular (§4.2 page placement) vs reshaped (§4.3 portion pools) — plus
// the two no-directive baselines (first-touch, round-robin) the paper's
// figures always compare against. Every candidate carries the matching
// §3.4 affinity clause for each nest, so the emitted directives are
// exactly what a hand-tuned program would say.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"dsmdist/internal/dist"
	"dsmdist/internal/ir"
	"dsmdist/internal/ospage"
)

// Alignment maps array dimensions to parallel loop variables for one
// array: Dims[d] is the nest parallel-loop index keyed to array dimension
// d, or -1. It is derived from the array's dominant nest.
type Alignment struct {
	Sym  *ir.Sym
	Nest *Nest
	// Dims[d] >= 0 names ParLoops[Dims[d]] as the variable that indexes
	// dimension d with coefficient 1.
	Dims []int
}

// Aligned reports whether any dimension is keyed to a parallel loop.
func (al *Alignment) Aligned() bool {
	for _, l := range al.Dims {
		if l >= 0 {
			return true
		}
	}
	return false
}

// alignments infers the per-array alignment from the dominant (heaviest)
// nest that references the array with a parallel loop variable.
func alignments(an *Analysis) map[*ir.Sym]*Alignment {
	out := map[*ir.Sym]*Alignment{}
	for _, s := range an.Arrays {
		var best *Alignment
		for _, nest := range an.Nests {
			al := alignIn(s, nest, an.Extents[s])
			if al == nil || !al.Aligned() {
				continue
			}
			if best == nil || nest.Weight > best.Nest.Weight {
				best = al
			}
		}
		if best != nil {
			out[s] = best
		}
	}
	return out
}

// alignIn computes the alignment of one array within one nest by voting:
// each reference whose dimension-d subscript is 1*v+c for a parallel loop
// variable v casts its Iter weight for the (d, v) pairing. Pairings are
// then granted greedily, heaviest first, each dimension and each variable
// at most once (an affinity variable may key only one distributed
// dimension, §3.4).
func alignIn(s *ir.Sym, nest *Nest, ext []int64) *Alignment {
	if len(ext) == 0 {
		return nil
	}
	votes := map[[2]int]int64{}
	for _, r := range nest.Refs {
		if r.Sym != s {
			continue
		}
		for d, sub := range r.Subs {
			if !sub.Affine || sub.Var == nil || sub.A != 1 {
				continue
			}
			for l, pl := range nest.ParLoops {
				if pl.Var == sub.Var {
					votes[[2]int{d, l}] += r.Iter
				}
			}
		}
	}
	if len(votes) == 0 {
		return nil
	}
	type pair struct {
		d, l int
		w    int64
	}
	pairs := make([]pair, 0, len(votes))
	for k, w := range votes {
		pairs = append(pairs, pair{k[0], k[1], w})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		return pairs[i].l < pairs[j].l
	})
	al := &Alignment{Sym: s, Nest: nest, Dims: make([]int, len(ext))}
	for d := range al.Dims {
		al.Dims[d] = -1
	}
	usedVar := map[int]bool{}
	for _, p := range pairs {
		if al.Dims[p.d] >= 0 || usedVar[p.l] {
			continue
		}
		al.Dims[p.d] = p.l
		usedVar[p.l] = true
	}
	return al
}

// AffinityChoice is the synthesized affinity clause of one nest under one
// candidate: affinity(vars...) = data(Array(subs...)).
type AffinityChoice struct {
	Array *ir.Sym
	// Subs[d] is the parallel-loop index whose variable appears as the
	// subscript of dimension d, or -1 for the constant 1.
	Subs []int
}

// Clause renders the affinity clause text for the nest.
func (ac *AffinityChoice) Clause(nest *Nest) string {
	vars := make([]string, len(nest.ParLoops))
	for i, pl := range nest.ParLoops {
		vars[i] = pl.Var.Name
	}
	subs := make([]string, len(ac.Subs))
	for d, l := range ac.Subs {
		if l >= 0 {
			subs[d] = nest.ParLoops[l].Var.Name
		} else {
			subs[d] = "1"
		}
	}
	return fmt.Sprintf("affinity(%s) = data(%s(%s))",
		strings.Join(vars, ", "), ac.Array.Name, strings.Join(subs, ", "))
}

// Candidate is one point of the search space: a full distribution
// strategy for the unit.
type Candidate struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
	// Policy is the page policy for pages not claimed by a directive;
	// it is the whole strategy for the two plain candidates.
	Policy ospage.Policy `json:"-"`
	// Specs maps array name -> distribution; empty for plain candidates.
	Specs map[string]dist.Spec `json:"-"`
	// SpecText is the rendered directive body, e.g.
	// "a(*, block), b(block, *)" ("" for plain candidates).
	SpecText string `json:"spec"`
	Reshape  bool   `json:"reshape"`
	// affinity[nest index in Analysis.Nests] is the synthesized clause.
	affinity map[int]*AffinityChoice

	StaticCost float64 `json:"static_cost"`
	// Cycles[i] is the measured timed-section cycles at Procs[i]
	// (nil until verified).
	Cycles   []int64 `json:"cycles,omitempty"`
	Total    int64   `json:"total_cycles,omitempty"`
	Verified bool    `json:"verified"`
	// Source is the rewritten program implementing the candidate.
	Source string `json:"-"`
}

// PolicyName is the page-policy spelling for reports.
func (c *Candidate) PolicyName() string { return c.Policy.String() }

// enumerate builds the candidate list for an analysis. The aligned
// distributed dimensions are taken from the alignment; the kind menu is
// block, cyclic, and page-sized cyclic(k), each as regular and reshaped.
func enumerate(an *Analysis, pageBytes int) []*Candidate {
	als := alignments(an)
	// Deterministic array order: symbol order of the unit.
	var arrays []*ir.Sym
	for _, s := range an.Arrays {
		if als[s] != nil {
			arrays = append(arrays, s)
		}
	}

	cands := []*Candidate{
		{Label: "first-touch", Policy: ospage.FirstTouch},
		{Label: "round-robin", Policy: ospage.RoundRobin},
	}
	if len(arrays) > 0 {
		kinds := []struct {
			tag  string
			kind dist.Kind
		}{
			{"block", dist.Block},
			{"cyclic-page", dist.BlockCyclic},
			{"cyclic", dist.Cyclic},
		}
		for _, k := range kinds {
			for _, reshape := range []bool{false, true} {
				c := &Candidate{Policy: ospage.FirstTouch, Reshape: reshape,
					Specs: map[string]dist.Spec{}, affinity: map[int]*AffinityChoice{}}
				if reshape {
					c.Label = "reshaped-" + k.tag
				} else {
					c.Label = "regular-" + k.tag
				}
				for _, s := range arrays {
					c.Specs[s.Name] = specFor(als[s], an.Extents[s], k.kind, reshape, pageBytes)
				}
				for ni, nest := range an.Nests {
					if ac := chooseAffinity(an, nest, c.Specs, als); ac != nil {
						c.affinity[ni] = ac
					}
				}
				c.SpecText = renderSpecs(arrays, c.Specs)
				cands = append(cands, c)
			}
		}
	}
	for i, c := range cands {
		c.ID = i
	}
	return cands
}

// specFor builds the spec for one array: the given kind on aligned
// dimensions, * elsewhere. cyclic-page chunks are sized so one chunk of
// the dimension spans about one page of consecutive memory.
func specFor(al *Alignment, ext []int64, kind dist.Kind, reshape bool, pageBytes int) dist.Spec {
	sp := dist.Spec{Dims: make([]dist.Dim, len(al.Dims)), Reshape: reshape}
	dimStride := int64(1)
	for d := range al.Dims {
		if al.Dims[d] >= 0 {
			dm := dist.Dim{Kind: kind}
			if kind == dist.BlockCyclic {
				chunk := int64(pageBytes/8) / dimStride
				if chunk < 1 {
					chunk = 1
				}
				dm.Chunk = int(chunk)
			}
			sp.Dims[d] = dm
		}
		dimStride *= ext[d]
	}
	return sp
}

// chooseAffinity picks the affinity array of one nest under the given
// specs: the distributed array with the most aligned traffic in the nest,
// writes preferred (affinity scheduling makes the written data local).
func chooseAffinity(an *Analysis, nest *Nest, specs map[string]dist.Spec, als map[*ir.Sym]*Alignment) *AffinityChoice {
	var best *ir.Sym
	var bestSubs []int
	var bestScore int64
	for _, s := range an.Arrays {
		sp, ok := specs[s.Name]
		if !ok || !sp.Distributed() {
			continue
		}
		al := alignIn(s, nest, an.Extents[s])
		if al == nil {
			continue
		}
		// Every distributed dim must be keyed by a nest variable or be
		// constant-subscriptable; unkeyed distributed dims get the
		// constant 1, which is always legal.
		subs := make([]int, len(sp.Dims))
		keyed := false
		for d := range sp.Dims {
			subs[d] = -1
			if sp.Dims[d].Distributed() && al.Dims[d] >= 0 {
				subs[d] = al.Dims[d]
				keyed = true
			}
		}
		if !keyed {
			continue
		}
		var score int64
		for _, r := range nest.Refs {
			if r.Sym != s {
				continue
			}
			score += r.Iter
			if r.Write {
				score += 4 * r.Iter // writes dominate the choice
			}
		}
		if score > bestScore {
			best, bestSubs, bestScore = s, subs, score
		}
	}
	if best == nil {
		return nil
	}
	return &AffinityChoice{Array: best, Subs: bestSubs}
}

// renderSpecs renders "a(*, block), b(block, *)" in array order.
func renderSpecs(arrays []*ir.Sym, specs map[string]dist.Spec) string {
	parts := make([]string, 0, len(arrays))
	for _, s := range arrays {
		sp := specs[s.Name]
		dims := make([]string, len(sp.Dims))
		for d, dm := range sp.Dims {
			dims[d] = dm.String()
		}
		parts = append(parts, fmt.Sprintf("%s(%s)", s.Name, strings.Join(dims, ", ")))
	}
	return strings.Join(parts, ", ")
}
