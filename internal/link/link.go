// Package link implements the pre-linker and linker of §5 and the
// link-time error detection of §6.
//
// The pre-linker examines every object's shadow section, propagates
// distribute_reshape directives from call sites down the call graph, and
// clones subroutines — one instance per distinct combination of incoming
// reshaped distributions — by re-invoking the compiler (sema + xform) on
// the AST embedded in the object, exactly as the paper re-invokes the
// compiler on the source file for each requested clone. Requests that no
// call site needs are never instantiated, which is the paper's
// stale-request garbage collection. It also verifies that all declarations
// of a common block agree on the offset, shape, size and distribution of
// every reshaped member.
package link

import (
	"fmt"
	"sort"
	"strings"

	"dsmdist/internal/codegen"
	"dsmdist/internal/dist"
	"dsmdist/internal/fortran"
	"dsmdist/internal/ir"
	"dsmdist/internal/obj"
	"dsmdist/internal/sema"
	"dsmdist/internal/xform"
)

// Config controls the optimization level and runtime checking of the
// linked program.
type Config struct {
	Opt           xform.Options
	RuntimeChecks bool
}

// Image is a linked executable.
type Image struct {
	Res *codegen.Result
	// Instances lists the unit instances in function-index order
	// (clones carry mangled names).
	Instances []*ir.Unit
	// Clones maps original subroutine names to the number of instances
	// generated (diagnostics; the paper expects this to stay small).
	Clones map[string]int
}

// Clone returns an image that can be loaded and executed while other
// clones of the same image run concurrently: the run-mutable compile
// artifacts are deep-copied (codegen.Result.Clone), while the link-time
// metadata (Instances, Clones) is read-only and stays shared.
func (img *Image) Clone() *Image {
	return &Image{Res: img.Res.Clone(), Instances: img.Instances, Clones: img.Clones}
}

// LinkError is a link-time diagnostic.
type LinkError struct{ Msg string }

func (e *LinkError) Error() string { return "link: " + e.Msg }

func errf(format string, args ...any) error {
	return &LinkError{Msg: fmt.Sprintf(format, args...)}
}

// sigKey builds the canonical instance key for a (name, signature) pair.
func sigKey(name string, sig []*dist.Spec) string {
	if len(sig) == 0 {
		return name
	}
	all := true
	parts := make([]string, len(sig))
	for i, s := range sig {
		if s == nil {
			parts[i] = "_"
		} else {
			parts[i] = s.String()
			all = false
		}
	}
	if all {
		return name
	}
	return name + "$" + strings.Join(parts, "$")
}

// instance is one unit instance being linked.
type instance struct {
	key  string
	name string // original name
	sig  []*dist.Spec
	unit *ir.Unit
}

// Link runs the pre-linker and produces an executable image.
func Link(objs []*obj.Object, cfg Config) (*Image, error) {
	// Index definitions.
	type def struct {
		file string
		ast  *fortran.Unit
	}
	defs := map[string]def{}
	var mainName string
	for _, o := range objs {
		for _, u := range o.File.Units {
			if prev, dup := defs[u.Name]; dup {
				return nil, errf("%s defined in both %s and %s", u.Name, prev.file, o.FileName)
			}
			defs[u.Name] = def{file: o.FileName, ast: u}
			if u.Kind == fortran.ProgramUnit {
				if mainName != "" {
					return nil, errf("multiple program units: %s and %s", mainName, u.Name)
				}
				mainName = u.Name
			}
		}
	}
	if mainName == "" {
		return nil, errf("no program unit")
	}

	if err := checkCommons(objs); err != nil {
		return nil, err
	}

	// Worklist closure over clone requests, starting from the program.
	instances := []*instance{}
	index := map[string]int{}
	clones := map[string]int{}

	var instantiate func(name string, sig []*dist.Spec, dims [][]int64, from string, line int) (int, error)
	instantiate = func(name string, sig []*dist.Spec, dims [][]int64, from string, line int) (int, error) {
		key := sigKey(name, sig)
		if i, ok := index[key]; ok {
			if err := checkActualShapes(instances[i].unit, sig, dims, from, line); err != nil {
				return 0, err
			}
			return i, nil
		}
		d, ok := defs[name]
		if !ok {
			return 0, errf("%s:%d: call to undefined subroutine %s", from, line, name)
		}
		// Bind the propagated distributions to the formals (§5).
		bindings := map[string]dist.Spec{}
		for i, s := range sig {
			if s == nil {
				continue
			}
			if i >= len(d.ast.Params) {
				return 0, errf("%s:%d: %s takes %d arguments but reshaped argument %d supplied",
					from, line, name, len(d.ast.Params), i+1)
			}
			bindings[d.ast.Params[i]] = *s
		}
		iu, errs := sema.AnalyzeUnit(d.file, d.ast, sema.Options{ParamDists: bindings})
		if errs.Err() != nil {
			return 0, errs.Err()
		}
		if len(sig) > 0 && len(sig) != len(iu.Params) {
			return 0, errf("%s:%d: %s expects %d arguments, call passes %d",
				from, line, name, len(iu.Params), len(sig))
		}
		if err := checkActualShapes(iu, sig, dims, from, line); err != nil {
			return 0, err
		}
		xform.Transform(iu, cfg.Opt)
		iu.Name = key // mangled instance name
		inst := &instance{key: key, name: name, sig: sig, unit: iu}
		idx := len(instances)
		instances = append(instances, inst)
		index[key] = idx
		clones[name]++

		// Walk the instance's calls, requesting callees (the shadow
		// entries of §5; computed from the transformed IR so clones
		// request their own callees with the right distributions).
		var walkErr error
		ir.WalkStmts(iu.Body, func(s ir.Stmt) bool {
			if walkErr != nil {
				return false
			}
			call, ok := s.(*ir.CallStmt)
			if !ok {
				return true
			}
			csig := make([]*dist.Spec, len(call.Args))
			cdims := make([][]int64, len(call.Args))
			for i, a := range call.Args {
				if aa, ok := a.(*ir.ArgArray); ok && aa.Sym.IsReshaped() {
					csig[i] = aa.Sym.Dist
					if dd, ok := aa.Sym.ConstDims(); ok {
						cdims[i] = dd
					}
				}
			}
			if _, err := instantiate(call.Callee, csig, cdims, d.file, call.Line); err != nil {
				walkErr = err
			}
			return true
		}, nil)
		if walkErr != nil {
			return 0, walkErr
		}
		return idx, nil
	}

	if _, err := instantiate(mainName, nil, nil, "", 0); err != nil {
		return nil, err
	}

	units := make([]*ir.Unit, len(instances))
	for i, in := range instances {
		units[i] = in.unit
	}
	env := codegen.Env{
		Resolve: func(name string, sig []*dist.Spec) (int, error) {
			if i, ok := index[sigKey(name, sig)]; ok {
				return i, nil
			}
			return 0, fmt.Errorf("unresolved call to %s", sigKey(name, sig))
		},
	}
	res, err := codegen.Program(units, env, codegen.Options{
		FPDiv:         cfg.Opt.FPDiv,
		RuntimeChecks: cfg.RuntimeChecks,
	})
	if err != nil {
		return nil, err
	}
	return &Image{Res: res, Instances: units, Clones: clones}, nil
}

// checkActualShapes enforces the §3.2.1 whole-array rule at link time: when
// an entire reshaped array is passed, the formal's declared rank and every
// extent must match the actual exactly.
func checkActualShapes(iu *ir.Unit, sig []*dist.Spec, dims [][]int64, from string, line int) error {
	for i, s := range sig {
		if s == nil || i >= len(iu.Params) || dims == nil || dims[i] == nil {
			continue
		}
		p := iu.Params[i]
		pd, ok := p.ConstDims()
		if !ok {
			return errf("%s:%d: reshaped formal %s of %s needs constant extents", from, line, p.Name, iu.Name)
		}
		if len(pd) != len(dims[i]) {
			return errf("%s:%d: %s formal %s has rank %d, actual has rank %d",
				from, line, iu.Name, p.Name, len(pd), len(dims[i]))
		}
		for d := range pd {
			if pd[d] != dims[i][d] {
				return errf("%s:%d: %s formal %s extent %d is %d, actual has %d (reshaped arrays must match exactly, §3.2.1)",
					from, line, iu.Name, p.Name, d+1, pd[d], dims[i][d])
			}
		}
	}
	return nil
}

// checkCommons performs the link-time common-block consistency check
// (§6): every declaration of a block containing a reshaped array must
// declare that array at the same offset, with the same shape, size and
// distribution. Blocks without reshaped members are not affected.
func checkCommons(objs []*obj.Object) error {
	byBlock := map[string][]obj.CommonAnn{}
	var order []string
	for _, o := range objs {
		for _, ann := range o.Commons {
			if _, seen := byBlock[ann.Block]; !seen {
				order = append(order, ann.Block)
			}
			byBlock[ann.Block] = append(byBlock[ann.Block], ann)
		}
	}
	sort.Strings(order)
	for _, blk := range order {
		decls := byBlock[blk]
		// Find a declaration with a reshaped member to serve as the
		// reference.
		var ref *obj.CommonAnn
		for i := range decls {
			for _, m := range decls[i].Members {
				if m.Spec.Has && m.Spec.Spec.Reshape {
					ref = &decls[i]
					break
				}
			}
			if ref != nil {
				break
			}
		}
		if ref == nil {
			continue // no reshaped members: unconstrained (§6)
		}
		for i := range decls {
			d := &decls[i]
			if d == ref {
				continue
			}
			if err := compareCommonDecls(blk, ref, d); err != nil {
				return err
			}
		}
	}
	return nil
}

func compareCommonDecls(blk string, ref, d *obj.CommonAnn) error {
	// Each reshaped member of ref must appear identically in d, and vice
	// versa.
	check := func(a, b *obj.CommonAnn) error {
		for _, m := range a.Members {
			if !m.Spec.Has || !m.Spec.Spec.Reshape {
				continue
			}
			var found *obj.CommonMember
			for j := range b.Members {
				if b.Members[j].Offset == m.Offset {
					found = &b.Members[j]
					break
				}
			}
			if found == nil {
				return errf("%s:%d: common /%s/ declares no member at offset %d where %s declares reshaped array %s (§6)",
					b.File, b.Line, blk, m.Offset, a.Unit, m.Name)
			}
			if len(found.Dims) != len(m.Dims) {
				return errf("%s:%d: common /%s/ member %s has rank %d here but rank %d in %s (§6)",
					b.File, b.Line, blk, found.Name, len(found.Dims), len(m.Dims), a.Unit)
			}
			for k := range m.Dims {
				if found.Dims[k] != m.Dims[k] {
					return errf("%s:%d: common /%s/ member %s extent %d is %d here but %d in %s (§6)",
						b.File, b.Line, blk, found.Name, k+1, found.Dims[k], m.Dims[k], a.Unit)
				}
			}
			if !found.Spec.Has || !found.Spec.Spec.Equal(m.Spec.Spec) {
				return errf("%s:%d: common /%s/ member %s distribution differs from the reshaped declaration in %s (§6)",
					b.File, b.Line, blk, found.Name, a.Unit)
			}
		}
		return nil
	}
	if err := check(ref, d); err != nil {
		return err
	}
	return check(d, ref)
}
