package link

import (
	"strings"
	"testing"

	"dsmdist/internal/dist"
	"dsmdist/internal/obj"
	"dsmdist/internal/xform"
)

func compile(t *testing.T, name, src string) *obj.Object {
	t.Helper()
	o, err := obj.Compile(name, src)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return o
}

func linkAll(t *testing.T, srcs map[string]string) (*Image, error) {
	t.Helper()
	var objs []*obj.Object
	// deterministic order
	for _, name := range []string{"a.f", "b.f", "c.f", "main.f"} {
		if src, ok := srcs[name]; ok {
			objs = append(objs, compile(t, name, src))
		}
	}
	return Link(objs, Config{Opt: xform.O3(), RuntimeChecks: true})
}

func TestCloneOnePerSignature(t *testing.T) {
	img, err := linkAll(t, map[string]string{
		"main.f": `
      program p
      real*8 a(40), b(40), c(40), d(40)
c$distribute_reshape a(block), b(block)
c$distribute_reshape c(cyclic)
      call f(a)
      call f(b)
      call f(c)
      call f(d)
      end
`,
		"b.f": `
      subroutine f(x)
      real*8 x(40)
      x(1) = 1.0
      end
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	// block (shared by a and b), cyclic, plain: 3 instances.
	if img.Clones["f"] != 3 {
		t.Fatalf("clones = %d, want 3", img.Clones["f"])
	}
	// Clone names are mangled with the spec.
	var names []string
	for _, u := range img.Instances {
		names = append(names, u.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"f$distribute_reshape(block)", "f$distribute_reshape(cyclic)", " f"} {
		if !strings.Contains(joined+" ", want) {
			t.Fatalf("instances %v missing %q", names, want)
		}
	}
}

func TestTransitivePropagation(t *testing.T) {
	// §5: distributions propagate down a call CHAIN across files.
	img, err := linkAll(t, map[string]string{
		"main.f": `
      program p
      real*8 a(64)
c$distribute_reshape a(block)
      call outer(a)
      end
`,
		"a.f": `
      subroutine outer(x)
      real*8 x(64)
      call inner(x)
      end
`,
		"b.f": `
      subroutine inner(y)
      real*8 y(64)
      y(1) = 1.0
      end
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both outer and inner must have a reshaped instance.
	found := 0
	for _, u := range img.Instances {
		if strings.Contains(u.Name, "$distribute_reshape(block)") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("propagated instances = %d, want 2 (outer and inner)", found)
	}
}

func TestStaleRequestsNeverBuilt(t *testing.T) {
	// A subroutine defined but only called with plain arrays gets no
	// reshaped clones (the paper's stale-request GC: only requested
	// combinations are instantiated).
	img, err := linkAll(t, map[string]string{
		"main.f": `
      program p
      real*8 a(10)
      call g(a)
      end
`,
		"b.f": `
      subroutine g(x)
      real*8 x(10)
      x(1) = 1.0
      end

      subroutine nevercalled(x)
      real*8 x(10)
      x(2) = 2.0
      end
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range img.Instances {
		if u.Name == "nevercalled" {
			t.Fatal("unreferenced subroutine instantiated")
		}
		if strings.Contains(u.Name, "$") {
			t.Fatalf("unexpected clone %s", u.Name)
		}
	}
	if img.Clones["g"] != 1 {
		t.Fatalf("g instances = %d", img.Clones["g"])
	}
}

func TestUndefinedAndDuplicate(t *testing.T) {
	_, err := linkAll(t, map[string]string{
		"main.f": "      program p\n      call ghost\n      end\n",
	})
	if err == nil || !strings.Contains(err.Error(), "undefined subroutine ghost") {
		t.Fatalf("err = %v", err)
	}

	_, err = linkAll(t, map[string]string{
		"main.f": "      program p\n      end\n",
		"a.f":    "      subroutine s\n      end\n",
		"b.f":    "      subroutine s\n      end\n",
	})
	if err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Fatalf("err = %v", err)
	}

	_, err = linkAll(t, map[string]string{
		"a.f": "      subroutine s\n      end\n",
	})
	if err == nil || !strings.Contains(err.Error(), "no program unit") {
		t.Fatalf("err = %v", err)
	}
}

func TestArgCountMismatch(t *testing.T) {
	_, err := linkAll(t, map[string]string{
		"main.f": `
      program p
      real*8 a(10), b(10)
c$distribute_reshape a(block)
      call s(a, b, a)
      end
`,
		"a.f": `
      subroutine s(x, y)
      real*8 x(10), y(10)
      x(1) = 0.0
      end
`,
	})
	if err == nil || !strings.Contains(err.Error(), "takes 2 arguments") {
		t.Fatalf("err = %v", err)
	}
}

func TestSigKeyStability(t *testing.T) {
	spec := &dist.Spec{Reshape: true, Dims: []dist.Dim{{Kind: dist.Block}}}
	a := sigKey("f", []*dist.Spec{spec, nil})
	b := sigKey("f", []*dist.Spec{spec, nil})
	if a != b {
		t.Fatal("sigKey unstable")
	}
	if sigKey("f", nil) != "f" || sigKey("f", []*dist.Spec{nil, nil}) != "f" {
		t.Fatal("all-plain signature must map to the base name")
	}
}

func TestCommonWithoutReshapeUnconstrained(t *testing.T) {
	// §6: blocks without reshaped members are NOT flagged even when
	// declarations differ (classic Fortran allows it).
	_, err := linkAll(t, map[string]string{
		"main.f": `
      program p
      real*8 a(32)
      common /blk/ a
      a(1) = 0.0
      call s
      end
`,
		"a.f": `
      subroutine s
      real*8 a(16)
      common /blk/ a
      a(1) = 1.0
      end
`,
	})
	if err != nil {
		t.Fatalf("non-reshaped common inconsistency wrongly rejected: %v", err)
	}
}

func TestCommonReshapeDistributionMismatch(t *testing.T) {
	_, err := linkAll(t, map[string]string{
		"main.f": `
      program p
      real*8 a(32)
c$distribute_reshape a(block)
      common /blk/ a
      a(1) = 0.0
      call s
      end
`,
		"a.f": `
      subroutine s
      real*8 a(32)
c$distribute_reshape a(cyclic)
      common /blk/ a
      a(1) = 1.0
      end
`,
	})
	if err == nil || !strings.Contains(err.Error(), "distribution differs") {
		t.Fatalf("err = %v", err)
	}
}
